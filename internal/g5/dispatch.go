package g5

import (
	"sync"

	"repro/internal/hostk"
	"repro/internal/vec"
)

// DispatchPolicy selects how staged i-chunks are handed to the
// cluster's shards.
type DispatchPolicy int

const (
	// DispatchWorkSteal round-robins chunks across per-shard lanes and
	// lets an idle shard steal queued work from the back of the longest
	// other lane — the default policy. Stealing balances by time: the
	// emulated Compute cost is proportional to the chunk's interaction
	// count, so executed load tracks hardware load.
	DispatchWorkSteal DispatchPolicy = iota
	// DispatchRoundRobin pins every chunk to its round-robin lane (no
	// stealing). Per-board load is then a pure function of submission
	// order, which the balance regression tests pin as golden values.
	DispatchRoundRobin
)

// task is one staged unit of cluster work: a contiguous i-chunk of a
// force batch, referencing the batch's shared staged j-set. The acc and
// pot slices alias the caller's output arrays; disjoint chunks write
// disjoint ranges, so shards commit results without any reduction step
// (the per-i force is a single hardware sum — trivially deterministic
// reduction ordering).
type task struct {
	ipos []vec.V3
	jset *jset
	acc  []vec.V3
	pot  []float64
}

// jset is the staged copy of one batch's source list (the Accumulate
// caller reuses its j buffers immediately after submission). It is
// shared by all the batch's i-chunks and recycled when the last chunk
// drains. The SoA layout (padding included) is preserved so shard
// engines see exactly the caller's request.
type jset struct {
	j    hostk.JList
	refs int32 // accessed atomically via the cluster
}

// dispatcher is the cluster's work-stealing dispatch queue: one FIFO
// lane per shard. Owners pop from the front of their lane (batches
// stream through a board in submission order, the double-buffered
// SetIP/Run/GetForce cadence); thieves steal from the back of the
// longest lane, where the freshest — and least prefetch-committed —
// work sits.
//
// Stealing is allowed only from a BUSY victim: work queued behind a
// board that is currently draining a chunk is genuinely delayed, while
// an idle shard's queue is work its own board is about to start — a
// thief grabbing it would serialise two boards' load onto one. The
// distinction matters most on a host with fewer cores than shards,
// where an idle shard's worker goroutine can be runnable but not yet
// scheduled; without the busy check the running worker would drain
// every lane itself and the simulated critical path would collapse to
// the aggregate.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [][]*task
	busy   []bool // shard k's worker is executing a chunk
	steal  bool
	steals int64
	closed bool
}

func newDispatcher(k int, policy DispatchPolicy) *dispatcher {
	d := &dispatcher{
		lanes: make([][]*task, k),
		busy:  make([]bool, k),
		steal: policy == DispatchWorkSteal,
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// submit appends t to lane k and wakes the workers. A broadcast (not a
// single signal) is required: under DispatchRoundRobin only lane k's
// owner may run the task, and a lone Signal could wake a different,
// permanently-idle worker instead.
func (d *dispatcher) submit(k int, t *task) {
	d.mu.Lock()
	d.lanes[k] = append(d.lanes[k], t)
	d.mu.Unlock()
	d.cond.Broadcast()
}

// next blocks until shard k has work and returns it, or returns nil
// once the dispatcher is closed and k has nothing left to run. The
// shard is marked busy while it executes the returned task; a waiting
// or finished shard is idle (and wakes its lane's waiters so a thief
// reconsiders).
func (d *dispatcher) next(k int) *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.busy[k] {
		d.busy[k] = false
		// Becoming idle changes what thieves may take; re-examine.
		d.cond.Broadcast()
	}
	for {
		if lane := d.lanes[k]; len(lane) > 0 {
			t := lane[0]
			// Release the popped slot so drained tasks are collectable.
			lane[0] = nil
			d.lanes[k] = lane[1:]
			d.busy[k] = true
			return t
		}
		if d.steal {
			victim, best := -1, 0
			for i, lane := range d.lanes {
				if i != k && d.busy[i] && len(lane) > best {
					victim, best = i, len(lane)
				}
			}
			if victim >= 0 {
				lane := d.lanes[victim]
				t := lane[len(lane)-1]
				lane[len(lane)-1] = nil
				d.lanes[victim] = lane[:len(lane)-1]
				d.steals++
				d.busy[k] = true
				return t
			}
		}
		if d.closed {
			return nil
		}
		d.cond.Wait()
	}
}

// Steals returns how many tasks ran on a shard other than the one they
// were submitted to.
func (d *dispatcher) Steals() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.steals
}

// close wakes every worker for shutdown; workers drain their remaining
// lanes before exiting.
func (d *dispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}
