package g5

import (
	"reflect"
	"testing"
)

func TestCountersAddIsFieldComplete(t *testing.T) {
	// Every field of the sum must differ from the base when the live side
	// is all-ones; a zero delta means Add forgot a field.
	base := Counters{Interactions: 10, PipeSeconds: 1, BusSeconds: 2,
		BytesTransferred: 3, Runs: 4, JPasses: 5, RangeClamps: 6}
	live := Counters{Interactions: 1, PipeSeconds: 1, BusSeconds: 1,
		BytesTransferred: 1, Runs: 1, JPasses: 1, RangeClamps: 1}
	got := base.Add(live)
	want := Counters{Interactions: 11, PipeSeconds: 2, BusSeconds: 3,
		BytesTransferred: 4, Runs: 5, JPasses: 6, RangeClamps: 7}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	bv, gv := reflect.ValueOf(base), reflect.ValueOf(got)
	for i := 0; i < bv.NumField(); i++ {
		if reflect.DeepEqual(bv.Field(i).Interface(), gv.Field(i).Interface()) {
			t.Errorf("field %s unchanged by Add", bv.Type().Field(i).Name)
		}
	}
}

func TestRecoveryAddTakesLiveHostOnly(t *testing.T) {
	base := Recovery{Checks: 5, Retries: 4, CorruptResults: 3,
		ExcludedBoards: 2, FallbackBatches: 1, HostOnly: true}
	live := Recovery{Checks: 1, Retries: 1, CorruptResults: 1,
		ExcludedBoards: 1, FallbackBatches: 1, HostOnly: false}
	got := base.Add(live)
	want := Recovery{Checks: 6, Retries: 5, CorruptResults: 4,
		ExcludedBoards: 3, FallbackBatches: 2, HostOnly: false}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	// Fresh incarnation already degraded: HostOnly must track live side.
	if got := base.Add(Recovery{HostOnly: true}); !got.HostOnly {
		t.Error("live HostOnly=true not propagated")
	}
}

func TestFaultStatsAdd(t *testing.T) {
	base := FaultStats{JMemBitFlips: 1, StuckPipeCalls: 2, BusErrors: 3, Transients: 4}
	got := base.Add(FaultStats{JMemBitFlips: 10, StuckPipeCalls: 10, BusErrors: 10, Transients: 10})
	want := FaultStats{JMemBitFlips: 11, StuckPipeCalls: 12, BusErrors: 13, Transients: 14}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
}
