package perf

import (
	"math"

	"repro/internal/obs"
)

// ClusterBalance is the K-board extension of the §3 time balance for
// the sharded offload path (internal/g5.Cluster). The serial model
// behind StepReport.TotalSeconds assumes the paper's code structure —
// host walk and hardware strictly alternate — but the cluster's
// asynchronous double-buffering overlaps them: while K boards drain
// the current batches, the walk workers stream the next ones. Only the
// Morton sort and tree build remain serial (no group list exists
// before the tree does), so the pipelined step time is
//
//	T(K) = HostSerial + max(HostWalk, Hardware/K)
//
// with the hardware term — the critical-path shard's t_grape + t_comm
// — shrinking as 1/K while the host terms stay fixed.
type ClusterBalance struct {
	// HostSerial is the non-overlappable host time per step: Morton
	// sort plus tree build, which must finish before any group walks.
	HostSerial float64
	// HostWalk is the overlappable host time: group walk plus guard
	// overhead, running concurrently with the hardware drain.
	HostWalk float64
	// Hardware is the one-board hardware time per step, t_grape +
	// t_comm (each shard has its own bus, so communication shards too).
	Hardware float64
}

// ClusterBalanceFromObs extracts the balance terms from a measured
// single-board (K=1) step report.
func ClusterBalanceFromObs(r obs.StepReport) ClusterBalance {
	return ClusterBalance{
		HostSerial: r.Phases.MortonSort + r.Phases.TreeBuild,
		HostWalk:   r.Phases.GroupWalk + r.Phases.Guard,
		Hardware:   r.TGrape + r.TComm,
	}
}

// StepSeconds returns the predicted pipelined step time on k boards.
func (b ClusterBalance) StepSeconds(k int) float64 {
	if k < 1 {
		k = 1
	}
	return b.HostSerial + math.Max(b.HostWalk, b.Hardware/float64(k))
}

// Speedup returns the predicted step-time speedup of k boards over one.
func (b ClusterBalance) Speedup(k int) float64 {
	t1 := b.StepSeconds(1)
	tk := b.StepSeconds(k)
	if tk <= 0 {
		return 1
	}
	return t1 / tk
}

// SaturationShards returns the smallest board count at which the host
// walk becomes the bottleneck — the K beyond which more boards buy no
// step time. A walk-free balance never saturates; math.MaxInt is
// returned.
func (b ClusterBalance) SaturationShards() int {
	if b.Hardware <= 0 {
		return 1
	}
	if b.HostWalk <= 0 {
		return math.MaxInt
	}
	k := int(math.Ceil(b.Hardware / b.HostWalk))
	if k < 1 {
		k = 1
	}
	return k
}

// ClusterSweep rescales a serial (one-board) analytic n_g sweep to k
// boards under the i-axis sharding of g5.Cluster: pipeline time and
// bus time both divide by k — each shard streams 1/k of the i-stream
// over its own bus — while the modelled host time is untouched. The
// returned points use the SERIAL total (host + hw/k), the conservative
// reading that ignores walk/hardware overlap; it is what shifts the
// optimal n_g, because the host-vs-hardware trade-off the optimum
// balances is now host-vs-hardware/k.
func ClusterSweep(points []SweepPoint, k int) []SweepPoint {
	if k < 1 {
		k = 1
	}
	out := make([]SweepPoint, len(points))
	for i, p := range points {
		p.Report.PipeSeconds /= float64(k)
		p.Report.BusSeconds /= float64(k)
		out[i] = p
	}
	return out
}

// OptimalNcritK returns the optimal group size for k boards, derived
// from a serial sweep via ClusterSweep. Cheaper hardware time moves
// the balance toward larger groups (shorter host walks, longer lists),
// so the optimum is nondecreasing in k — the K-board restatement of
// the paper's n_g ≈ 2000 result.
func OptimalNcritK(points []SweepPoint, k int) int {
	scaled := ClusterSweep(points, k)
	i := OptimumIndex(scaled)
	if i < 0 {
		return 0
	}
	return scaled[i].Ncrit
}
