package perf

import (
	"math"
	"testing"

	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/rng"
)

func TestDirectStepModelScalesQuadratically(t *testing.T) {
	cfg := g5.DefaultConfig()
	host := DS10()
	small, err := DirectStepModel(10000, cfg, host)
	if err != nil {
		t.Fatal(err)
	}
	big, err := DirectStepModel(20000, cfg, host)
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.PipeSeconds / small.PipeSeconds
	if math.Abs(ratio-4) > 0.2 {
		t.Errorf("pipe time N-scaling ratio = %v, want ~4", ratio)
	}
	if big.Interactions != int64(20000)*19999 {
		t.Errorf("interactions = %d", big.Interactions)
	}
}

func TestDirectStepModelPipeTime(t *testing.T) {
	// At n = 96k the pipelines are fully utilised: pipe time ≈ n²/2.88e9.
	cfg := g5.DefaultConfig()
	n := 96000
	rep, err := DirectStepModel(n, cfg, DS10())
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(n) * float64(n) / cfg.PeakInteractionsPerSecond()
	if rep.PipeSeconds < ideal || rep.PipeSeconds > ideal*1.02 {
		t.Errorf("pipe seconds = %v, ideal %v", rep.PipeSeconds, ideal)
	}
}

// TestCrossover: direct wins at small N, the treecode wins at large N,
// and there is a single crossover in between — the §1 motivation.
func TestCrossover(t *testing.T) {
	var systems []*nbody.System
	for _, n := range []int{1000, 4000, 16000, 64000} {
		systems = append(systems, nbody.Plummer(n, 1, 1, 1, rng.New(uint64(n))))
	}
	points, err := Crossover(systems, 0.75, 2000, g5.DefaultConfig(), DS10())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	first := points[0]
	last := points[len(points)-1]
	if first.DirectSeconds >= first.TreeSeconds {
		t.Errorf("at N=%d direct (%v s) should beat tree (%v s)",
			first.N, first.DirectSeconds, first.TreeSeconds)
	}
	if last.TreeSeconds >= last.DirectSeconds {
		t.Errorf("at N=%d tree (%v s) should beat direct (%v s)",
			last.N, last.TreeSeconds, last.DirectSeconds)
	}
	// The direct/tree ratio must grow strongly across the range
	// (group-granularity effects make it non-monotone between adjacent
	// small-N samples, so compare the ends).
	rFirst := first.DirectSeconds / first.TreeSeconds
	rLast := last.DirectSeconds / last.TreeSeconds
	if rLast < 4*rFirst {
		t.Errorf("direct/tree ratio grew only %vx -> %vx across the N range", rFirst, rLast)
	}
	t.Logf("crossover bracket: tree overtakes direct between N=%d and N=%d",
		first.N, last.N)
}

func TestDirectModelAtPaperN(t *testing.T) {
	// Direct summation at the paper's N would take ~27 minutes per step
	// on the GRAPE-5 — versus ~22-30 s for the treecode. This is the
	// whole point of the paper in one number.
	rep, err := DirectStepModel(2159038, g5.DefaultConfig(), DS10())
	if err != nil {
		t.Fatal(err)
	}
	perStepMinutes := rep.TotalSeconds() / 60
	if perStepMinutes < 20 || perStepMinutes > 40 {
		t.Errorf("direct at paper N = %.1f min/step, expected ~27", perStepMinutes)
	}
	t.Logf("direct summation at N=2,159,038: %.1f minutes per step (999 steps = %.0f days)",
		perStepMinutes, rep.TotalSeconds()*999/86400)
}
