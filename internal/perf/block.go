package perf

import (
	"repro/internal/obs"
)

// BlockCost is the cost model of the hierarchical block-timestep
// scheduler (internal/integrate.BlockLeapfrog). A block spans
// 2^MaxRung ticks of dt_min; a particle on rung k closes — and costs a
// force evaluation — 2^(MaxRung-k) times per block. The accuracy-
// matched alternative is a shared-dt run at the finest occupied rung's
// step, which evaluates all N particles on every one of its
// 2^(MaxRung-kmin) steps. The win of the hierarchy is the ratio of
// those two evaluation counts: with most particles parked on coarse
// rungs the numerator collapses while the denominator keeps paying N.
type BlockCost struct {
	// Occupancy is the particle count per rung, index k = rung k
	// (dt = dt_min·2^k), as reported by Simulation.RungOccupancy.
	Occupancy []int64
}

// maxRung returns the top rung index of the ladder.
func (b BlockCost) maxRung() int { return len(b.Occupancy) - 1 }

// minOccupied returns the lowest occupied rung (the substep driver),
// or the top rung when the ladder is empty.
func (b BlockCost) minOccupied() int {
	for k, n := range b.Occupancy {
		if n > 0 {
			return k
		}
	}
	return b.maxRung()
}

// N returns the total particle count across rungs.
func (b BlockCost) N() int64 {
	var n int64
	for _, c := range b.Occupancy {
		n += c
	}
	return n
}

// Substeps returns the force calculations per block: the lowest
// occupied rung closes 2^(MaxRung-kmin) times, and every other
// boundary coincides with one of its closings.
func (b BlockCost) Substeps() int64 {
	if len(b.Occupancy) == 0 {
		return 0
	}
	return int64(1) << uint(b.maxRung()-b.minOccupied())
}

// ForceEvals returns the i-particle force evaluations per block under
// the hierarchy: Σ_k occ[k]·2^(MaxRung-k).
func (b BlockCost) ForceEvals() int64 {
	var evals int64
	for k, n := range b.Occupancy {
		evals += n * (int64(1) << uint(b.maxRung()-k))
	}
	return evals
}

// SharedForceEvals returns the evaluations a shared-dt run at the
// finest occupied rung's step would spend over the same span: N on
// each of the block's substeps.
func (b BlockCost) SharedForceEvals() int64 {
	return b.N() * b.Substeps()
}

// EvalRatio returns ForceEvals/SharedForceEvals ∈ (0, 1]: the fraction
// of the shared-dt force work the hierarchy actually performs. 1 means
// a single occupied rung (no win, and bitwise-identical physics).
func (b BlockCost) EvalRatio() float64 {
	shared := b.SharedForceEvals()
	if shared == 0 {
		return 1
	}
	return float64(b.ForceEvals()) / float64(shared)
}

// Speedup returns the predicted step-time speedup over the shared-dt
// run when a fraction fixed ∈ [0, 1) of the shared-dt substep cost is
// evaluation-independent overhead (tree refresh, scheduling, kicks):
// both runs pay the overhead on every substep, only the force work
// scales with the active set.
func (b BlockCost) Speedup(fixed float64) float64 {
	if fixed < 0 {
		fixed = 0
	}
	if fixed >= 1 {
		return 1
	}
	return 1 / (fixed + (1-fixed)*b.EvalRatio())
}

// MeasuredEvalRatio extracts the realized evaluation ratio from a
// block step's telemetry: ActiveI force evaluations over N particles ×
// Substeps force calculations. Zero-substep reports (fixed-dt runs)
// return 1.
func MeasuredEvalRatio(r obs.StepReport, n int64) float64 {
	if r.Substeps == 0 || n == 0 {
		return 1
	}
	return float64(r.ActiveI) / (float64(n) * float64(r.Substeps))
}
