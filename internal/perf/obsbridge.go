package perf

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// StepFromObs converts one step's telemetry into a modelled StepReport:
// the host side comes from the analytic host model evaluated on the
// measured traversal statistics, the GRAPE side from the telemetry's
// simulated pipeline and transfer phases. This is how measured runs
// (with guard overhead, per-step rescaling and evolved clustering) are
// put on the same time axis as the §3 analytic sweep so their optimal
// n_g can be compared.
func StepFromObs(h HostModel, st *core.Stats, r obs.StepReport) StepReport {
	return StepReport{
		HostSeconds:      h.StepSeconds(st),
		HostBuildSeconds: h.BuildSeconds(st.N),
		PipeSeconds:      r.TGrape,
		BusSeconds:       r.TComm,
		Interactions:     st.Interactions,
	}
}

// OptimumIndex returns the index of the sweep point with the smallest
// modelled total time, or -1 for an empty sweep.
func OptimumIndex(points []SweepPoint) int {
	best := -1
	for i := range points {
		if best < 0 || points[i].Report.TotalSeconds() < points[best].Report.TotalSeconds() {
			best = i
		}
	}
	return best
}
