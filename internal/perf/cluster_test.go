package perf

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestClusterBalanceStepSeconds(t *testing.T) {
	b := ClusterBalance{HostSerial: 0.003, HostWalk: 0.002, Hardware: 0.040}
	// K=1: hardware dominates the walk.
	if got, want := b.StepSeconds(1), 0.003+0.040; math.Abs(got-want) > 1e-15 {
		t.Errorf("T(1) = %v, want %v", got, want)
	}
	// K=10: hardware/K = 0.004 still above the walk.
	if got, want := b.StepSeconds(10), 0.003+0.004; math.Abs(got-want) > 1e-15 {
		t.Errorf("T(10) = %v, want %v", got, want)
	}
	// K=40: the walk is now the bottleneck; more boards do nothing.
	if got, want := b.StepSeconds(40), 0.003+0.002; math.Abs(got-want) > 1e-15 {
		t.Errorf("T(40) = %v, want %v", got, want)
	}
	if b.StepSeconds(80) != b.StepSeconds(40) {
		t.Error("step time kept shrinking past saturation")
	}
	// K<1 is clamped to 1.
	if b.StepSeconds(0) != b.StepSeconds(1) {
		t.Error("K=0 not clamped to 1")
	}
}

func TestClusterBalanceSpeedupMonotone(t *testing.T) {
	b := ClusterBalance{HostSerial: 0.003, HostWalk: 0.002, Hardware: 0.040}
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		s := b.Speedup(k)
		if s < prev-1e-12 {
			t.Errorf("speedup decreased at K=%d: %v after %v", k, s, prev)
		}
		if s > float64(k)+1e-12 {
			t.Errorf("superlinear speedup %v at K=%d", s, k)
		}
		prev = s
	}
	if s := b.Speedup(1); s != 1 {
		t.Errorf("Speedup(1) = %v, want 1", s)
	}
	// The model's asymptote: T(∞) = serial + walk.
	limit := (b.HostSerial + b.Hardware) / (b.HostSerial + b.HostWalk)
	if s := b.Speedup(1 << 20); math.Abs(s-limit) > 1e-9 {
		t.Errorf("asymptotic speedup = %v, want %v", s, limit)
	}
}

func TestClusterBalanceSaturation(t *testing.T) {
	b := ClusterBalance{HostSerial: 0.003, HostWalk: 0.002, Hardware: 0.040}
	k := b.SaturationShards()
	if k != 20 { // 0.040/0.002
		t.Errorf("saturation at K=%d, want 20", k)
	}
	// At saturation the hardware term equals the walk; past it, no gain.
	if b.StepSeconds(k) != b.StepSeconds(k+1) {
		t.Errorf("step time still improving past saturation K=%d", k)
	}
	if got := (ClusterBalance{HostSerial: 1, HostWalk: 1}).SaturationShards(); got != 1 {
		t.Errorf("hardware-free balance saturates at %d, want 1", got)
	}
	if got := (ClusterBalance{Hardware: 1}).SaturationShards(); got != math.MaxInt {
		t.Errorf("walk-free balance saturates at %d, want MaxInt", got)
	}
}

func TestClusterBalanceFromObs(t *testing.T) {
	r := obs.StepReport{
		Phases: obs.PhaseSeconds{
			MortonSort: 0.001, TreeBuild: 0.002, GroupWalk: 0.004, Guard: 0.0005,
		},
		TGrape: 0.030, TComm: 0.010,
	}
	b := ClusterBalanceFromObs(r)
	if math.Abs(b.HostSerial-0.003) > 1e-15 {
		t.Errorf("HostSerial = %v, want 0.003", b.HostSerial)
	}
	if math.Abs(b.HostWalk-0.0045) > 1e-15 {
		t.Errorf("HostWalk = %v, want 0.0045", b.HostWalk)
	}
	if math.Abs(b.Hardware-0.040) > 1e-15 {
		t.Errorf("Hardware = %v, want 0.040", b.Hardware)
	}
}

// syntheticSweep builds an analytic-shaped n_g sweep: host time falls
// with n_g (shorter walks), hardware time rises (longer shared lists)
// — the §3 trade-off in miniature.
func syntheticSweep() []SweepPoint {
	ncrits := []int{125, 250, 500, 1000, 2000, 4000, 8000}
	pts := make([]SweepPoint, len(ncrits))
	for i, ng := range ncrits {
		f := float64(ng)
		pts[i] = SweepPoint{
			Ncrit: ng,
			Report: StepReport{
				HostSeconds: 8 / math.Sqrt(f), // walk cost shrinks with n_g
				PipeSeconds: 0.002 * math.Sqrt(f),
				BusSeconds:  0.0005 * math.Sqrt(f),
			},
		}
	}
	return pts
}

func TestClusterSweepScaling(t *testing.T) {
	pts := syntheticSweep()
	scaled := ClusterSweep(pts, 4)
	for i := range pts {
		if scaled[i].Ncrit != pts[i].Ncrit {
			t.Fatalf("point %d ncrit changed", i)
		}
		if math.Abs(scaled[i].Report.PipeSeconds-pts[i].Report.PipeSeconds/4) > 1e-15 {
			t.Errorf("pipe time not quartered at %d", i)
		}
		if math.Abs(scaled[i].Report.BusSeconds-pts[i].Report.BusSeconds/4) > 1e-15 {
			t.Errorf("bus time not quartered at %d", i)
		}
		if scaled[i].Report.HostSeconds != pts[i].Report.HostSeconds {
			t.Errorf("host time changed at %d", i)
		}
	}
	// The original slice must be untouched (ClusterSweep copies).
	if pts[0].Report.PipeSeconds != 0.002*math.Sqrt(125) {
		t.Error("ClusterSweep mutated its input")
	}
}

// TestOptimalNcritMonotoneInK: with hardware time divided by K, the
// optimum group size must move toward larger groups (or stay put) —
// never smaller. This is the cluster restatement of the paper's n_g
// optimum.
func TestOptimalNcritMonotoneInK(t *testing.T) {
	pts := syntheticSweep()
	prev := 0
	for _, k := range []int{1, 2, 4, 8, 16} {
		ng := OptimalNcritK(pts, k)
		if ng == 0 {
			t.Fatalf("no optimum at K=%d", k)
		}
		if ng < prev {
			t.Errorf("optimal n_g shrank with more boards: %d at K=%d after %d", ng, k, prev)
		}
		prev = ng
	}
	// The synthetic sweep is built so the optimum actually moves across
	// the K range — otherwise the monotonicity check is vacuous.
	if OptimalNcritK(pts, 16) <= OptimalNcritK(pts, 1) {
		t.Errorf("optimum did not move: K=1 %d, K=16 %d — sweep shape too flat",
			OptimalNcritK(pts, 1), OptimalNcritK(pts, 16))
	}
}
