package perf

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestBlockCostSingleRung(t *testing.T) {
	// Everyone on one rung: one substep per block, ratio exactly 1.
	b := BlockCost{Occupancy: []int64{0, 0, 0, 2000}}
	if got := b.Substeps(); got != 1 {
		t.Errorf("Substeps = %d, want 1", got)
	}
	if got := b.ForceEvals(); got != 2000 {
		t.Errorf("ForceEvals = %d, want 2000", got)
	}
	if got := b.EvalRatio(); got != 1 {
		t.Errorf("EvalRatio = %v, want 1", got)
	}
	if got := b.Speedup(0.1); got != 1 {
		t.Errorf("Speedup = %v, want 1 for a flat ladder", got)
	}
}

func TestBlockCostHierarchy(t *testing.T) {
	// 4-rung ladder, rung 1 lowest occupied: substeps = 2^(3-1) = 4.
	b := BlockCost{Occupancy: []int64{0, 100, 300, 600}}
	if got := b.Substeps(); got != 4 {
		t.Errorf("Substeps = %d, want 4", got)
	}
	// 100·4 + 300·2 + 600·1 = 1600 evals vs 1000·4 = 4000 shared.
	if got := b.ForceEvals(); got != 1600 {
		t.Errorf("ForceEvals = %d, want 1600", got)
	}
	if got := b.SharedForceEvals(); got != 4000 {
		t.Errorf("SharedForceEvals = %d, want 4000", got)
	}
	if got, want := b.EvalRatio(), 0.4; math.Abs(got-want) > 1e-15 {
		t.Errorf("EvalRatio = %v, want %v", got, want)
	}
	// Pure force cost: speedup is the inverse ratio.
	if got, want := b.Speedup(0), 2.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Speedup(0) = %v, want %v", got, want)
	}
	// With overhead the win shrinks but never inverts.
	s := b.Speedup(0.3)
	if s <= 1 || s >= 2.5 {
		t.Errorf("Speedup(0.3) = %v, want in (1, 2.5)", s)
	}
	// All-overhead degenerates to no win.
	if got := b.Speedup(1); got != 1 {
		t.Errorf("Speedup(1) = %v, want 1", got)
	}
}

func TestBlockCostSpeedupMonotoneInRatio(t *testing.T) {
	// Pushing particles to coarser rungs must only help.
	prev := 0.0
	for coarse := int64(0); coarse <= 900; coarse += 300 {
		b := BlockCost{Occupancy: []int64{100, 0, 0, 900 - coarse + 0, coarse}}
		s := b.Speedup(0.1)
		if s < prev-1e-12 {
			t.Errorf("speedup fell to %v as occupancy coarsened", s)
		}
		prev = s
	}
}

func TestMeasuredEvalRatio(t *testing.T) {
	r := obs.StepReport{Substeps: 4, ActiveI: 1600}
	if got, want := MeasuredEvalRatio(r, 1000), 0.4; math.Abs(got-want) > 1e-15 {
		t.Errorf("MeasuredEvalRatio = %v, want %v", got, want)
	}
	// Fixed-dt reports carry no substeps and read as ratio 1.
	if got := MeasuredEvalRatio(obs.StepReport{}, 1000); got != 1 {
		t.Errorf("fixed-dt ratio = %v, want 1", got)
	}
}
