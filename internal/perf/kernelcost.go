package perf

import (
	"time"

	"repro/internal/hostk"
)

// KernelCost holds measured per-operation costs of the host-side hot
// kernels — seconds per pairwise interaction of hostk.P2P and seconds
// per candidate-cell test of the batched MAC sink — timed on the
// machine the model will be used on. The DS10 coefficients in HostModel
// are calibrated against the paper's hardware; KernelCost is how the
// model tracks the host this code actually runs on, so the n_g balance
// (ClusterBalance, OptimalNcritK) reflects the batched kernels' faster
// host term instead of a 1999 workstation's.
type KernelCost struct {
	// P2PSeconds is the measured cost of one softened pairwise
	// interaction in hostk.P2P.
	P2PSeconds float64
	// MACSeconds is the measured cost of one candidate-cell opening
	// test through hostk.MACSink (gather included, batch of MACWidth).
	MACSeconds float64
}

// MeasureKernelCost times the hostk kernels directly. The measurement
// is wall-clock and therefore machine- and load-dependent — it feeds
// only the performance model, never simulation state. Costs a few
// milliseconds.
func MeasureKernelCost() KernelCost {
	return KernelCost{
		P2PSeconds: measureP2P(),
		MACSeconds: measureMAC(),
	}
}

// measureP2P times one probe point against a padded 4096-entry list,
// repeated until the sample is long enough to trust the timer.
func measureP2P() float64 {
	const nj = 4096
	var list hostk.JList
	for j := 0; j < nj; j++ {
		// A deterministic low-discrepancy spread; geometry barely
		// matters, the kernel is arithmetic-throughput bound.
		f := float64(j)
		list.Append(f*0.618, f*0.382, f*0.236, 1)
	}
	list.Pad()
	var sink float64
	iters := 1
	for {
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			ax, ay, az, pot := hostk.P2P(0.5, 0.5, 0.5, &list, 1e-4)
			sink += ax + ay + az + pot
		}
		dt := time.Since(t0)
		if dt >= 2*time.Millisecond {
			_ = sink
			return dt.Seconds() / float64(iters) / float64(nj)
		}
		iters *= 4
	}
}

// measureMAC times batched opening tests over a synthetic frontier.
func measureMAC() float64 {
	const batches = 512
	sink := hostk.MACSink{MinX: 0, MinY: 0, MinZ: 0, MaxX: 1, MaxY: 1, MaxZ: 1, Theta2: 0.75 * 0.75}
	var x, y, z, eff [hostk.MACWidth]float64
	var out [hostk.MACWidth]bool
	for k := 0; k < hostk.MACWidth; k++ {
		f := float64(k + 1)
		x[k], y[k], z[k], eff[k] = f*0.7, f*0.4, f*0.9, 0.5
	}
	accepted := 0
	iters := 1
	for {
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			for b := 0; b < batches; b++ {
				sink.Accept(&x, &y, &z, &eff, &out)
				if out[0] {
					accepted++
				}
			}
		}
		dt := time.Since(t0)
		if dt >= 2*time.Millisecond {
			_ = accepted
			return dt.Seconds() / float64(iters) / float64(batches*hostk.MACWidth)
		}
		iters *= 4
	}
}

// WithKernelCost returns a copy of h with the kernel-dependent
// coefficients replaced by measured values: VisitCoeff (the per-node
// opening test the batched MAC accelerates) and P2PCoeff (the host's
// per-interaction force cost). Build, walk-list and per-particle
// coefficients — dominated by memory traffic, not kernel arithmetic —
// are kept from h.
func (h HostModel) WithKernelCost(c KernelCost) HostModel {
	h.VisitCoeff = c.MACSeconds
	h.P2PCoeff = c.P2PSeconds
	return h
}

// HostForceSeconds returns the modelled host time to evaluate the given
// pairwise interaction count on the host itself — the term that prices
// host-engine runs and the guard's fallback batches. Zero until a
// measured P2PCoeff is set: the DS10 calibration predates the batched
// kernels and deliberately does not include a host force term (on the
// paper's system the hardware computes all forces).
func (h HostModel) HostForceSeconds(interactions int64) float64 {
	return h.P2PCoeff * float64(interactions)
}
