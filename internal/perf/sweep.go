package perf

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/nbody"
)

// ScheduleEngine is a core.Engine that evaluates nothing: it replays
// the traversal's offload schedule through the GRAPE-5 timing model.
// It makes full-scale performance experiments (the §3 n_g sweep, the
// §5 headline accounting) cheap: the interaction counts and modelled
// times are exact while the arithmetic — whose results the sweep does
// not need — is skipped.
type ScheduleEngine struct {
	mu  sync.Mutex
	sys *g5.System
}

// NewScheduleEngine wraps a g5 system for timing-only accounting.
func NewScheduleEngine(sys *g5.System) *ScheduleEngine {
	return &ScheduleEngine{sys: sys}
}

// System returns the wrapped hardware model.
func (e *ScheduleEngine) System() *g5.System { return e.sys }

// Accumulate implements core.Engine.
func (e *ScheduleEngine) Accumulate(req *core.Request) {
	e.mu.Lock()
	//lint:ignore g5contract perf replays schedules through the timing model; ChargeOnly is its charter
	e.sys.ChargeOnly(len(req.IPos), req.J.N)
	e.mu.Unlock()
}

// SweepPoint is one n_g sample of the §3 experiment.
type SweepPoint struct {
	// Ncrit is the group-size bound n_g.
	Ncrit int
	// Groups, Interactions, AvgList summarise the traversal.
	Groups       int
	Interactions int64
	AvgList      float64
	// Report is the modelled time balance for one force step.
	Report StepReport
}

// NgSweep runs the modified treecode traversal over snapshot s for each
// n_g value, modelling one step's time balance on the given host and
// GRAPE configuration. The snapshot is cloned per point, so s is not
// modified.
func NgSweep(s *nbody.System, theta float64, ncrits []int, host HostModel, cfg g5.Config) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(ncrits))
	for _, ng := range ncrits {
		sys, err := g5.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		// Scale setup is irrelevant for timing-only accounting but keep
		// the call sequence honest.
		b := s.Bounds().Cube()
		ext := b.MaxEdge()
		if err := sys.SetScale(b.Min.X-0.01*ext, b.Max.X+0.01*ext); err != nil {
			return nil, err
		}
		eng := NewScheduleEngine(sys)
		tc := core.New(core.Options{Theta: theta, Ncrit: ng}, eng)
		st, err := tc.ComputeForces(s.Clone())
		if err != nil {
			return nil, fmt.Errorf("perf: sweep at ncrit=%d: %w", ng, err)
		}
		points = append(points, SweepPoint{
			Ncrit:        ng,
			Groups:       st.Groups,
			Interactions: st.Interactions,
			AvgList:      st.AvgList(),
			Report:       ModelStep(host, st, sys.Counters()),
		})
	}
	return points, nil
}

// Optimum returns the sweep point with the smallest modelled total
// time, or nil for an empty sweep.
func Optimum(points []SweepPoint) *SweepPoint {
	var best *SweepPoint
	for i := range points {
		if best == nil || points[i].Report.TotalSeconds() < best.Report.TotalSeconds() {
			best = &points[i]
		}
	}
	return best
}

// RunModel extrapolates a whole simulation's metrics from a modelled
// per-step time balance, the way one predicts a 999-step run from
// representative steps.
type RunModel struct {
	// Steps is the number of timesteps (paper: 999).
	Steps int
	// PerStep is the modelled time balance of one force step.
	PerStep StepReport
	// OriginalPerStep is the original-algorithm interaction count for
	// one step (the effective-operation basis).
	OriginalPerStep int64
	// OpsPerInteraction is the flop convention.
	OpsPerInteraction int
	// Cost is the price list.
	Cost CostModel
}

// TotalSeconds returns the modelled wall clock of the full run.
func (m RunModel) TotalSeconds() float64 {
	return float64(m.Steps) * m.PerStep.TotalSeconds()
}

// GordonBell returns the headline metrics of the modelled run.
func (m RunModel) GordonBell() GordonBell {
	return GordonBell{
		Interactions:         float64(m.PerStep.Interactions) * float64(m.Steps),
		OriginalInteractions: float64(m.OriginalPerStep) * float64(m.Steps),
		WallClockSeconds:     m.TotalSeconds(),
		OpsPerInteraction:    m.OpsPerInteraction,
		Cost:                 m.Cost,
	}
}
