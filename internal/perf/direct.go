package perf

import (
	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/nbody"
)

// DirectStepModel returns the modelled time balance of one force step
// computed by direct O(N²) summation on the GRAPE hardware — the
// classic GRAPE workload (all particles loaded once into the particle
// memory, i-particles swept in pipeline-sized chunks). It is the
// baseline the paper's §1 motivates the treecode against: direct
// summation wins at small N (no tree overhead, perfect pipelining) and
// loses catastrophically at the paper's N.
func DirectStepModel(n int, cfg g5.Config, host HostModel) (StepReport, error) {
	sys, err := g5.NewSystem(cfg)
	if err != nil {
		return StepReport{}, err
	}
	if err := sys.SetScale(-1, 1); err != nil {
		return StepReport{}, err
	}
	// One j-load of the whole system, then ceil(n/vp) pipeline sweeps —
	// exactly what Driver.SetXMJ + chunked CalculateForceOnX charge.
	vp := cfg.VirtualPipesPerBoard()
	for lo := 0; lo < n; lo += vp {
		hi := lo + vp
		if hi > n {
			hi = n
		}
		//lint:ignore g5contract perf replays schedules through the timing model; ChargeOnly is its charter
		sys.ChargeOnly(hi-lo, n)
	}
	c := sys.Counters()
	// ChargeOnly re-charges the j-upload per call; correct to a single
	// upload by subtracting the duplicates.
	sweeps := (n + vp - 1) / vp
	dupJBytes := int64(sweeps-1) * int64(n) * int64(cfg.BytesPerJ)
	busSeconds := c.BusSeconds - float64(dupJBytes)/cfg.BusBandwidth

	// Host side: only per-particle integration work (no tree).
	hostSeconds := host.ParticleCoeff * float64(n)
	return StepReport{
		HostSeconds:  hostSeconds,
		PipeSeconds:  c.PipeSeconds,
		BusSeconds:   busSeconds,
		Interactions: int64(n) * int64(n-1),
	}, nil
}

// TreeStepModel measures a real modified-treecode traversal over the
// snapshot and models its step time — the other side of the crossover
// comparison.
func TreeStepModel(s *nbody.System, theta float64, ncrit int, cfg g5.Config, host HostModel) (StepReport, error) {
	sys, err := g5.NewSystem(cfg)
	if err != nil {
		return StepReport{}, err
	}
	b := s.Bounds().Cube()
	ext := b.MaxEdge()
	if ext == 0 {
		ext = 1
	}
	if err := sys.SetScale(b.Min.X-0.05*ext, b.Max.X+1.05*ext); err != nil {
		return StepReport{}, err
	}
	tc := core.New(core.Options{Theta: theta, Ncrit: ncrit}, NewScheduleEngine(sys))
	st, err := tc.ComputeForces(s.Clone())
	if err != nil {
		return StepReport{}, err
	}
	return ModelStep(host, st, sys.Counters()), nil
}

// CrossoverPoint is one N sample of the direct-vs-tree comparison.
type CrossoverPoint struct {
	N             int
	DirectSeconds float64
	TreeSeconds   float64
}

// Crossover evaluates both models over the given systems (assumed to be
// the same model family at increasing N) and returns the per-N times.
func Crossover(systems []*nbody.System, theta float64, ncrit int, cfg g5.Config, host HostModel) ([]CrossoverPoint, error) {
	out := make([]CrossoverPoint, 0, len(systems))
	for _, s := range systems {
		d, err := DirectStepModel(s.N(), cfg, host)
		if err != nil {
			return nil, err
		}
		t, err := TreeStepModel(s, theta, ncrit, cfg, host)
		if err != nil {
			return nil, err
		}
		out = append(out, CrossoverPoint{
			N:             s.N(),
			DirectSeconds: d.TotalSeconds(),
			TreeSeconds:   t.TotalSeconds(),
		})
	}
	return out, nil
}
