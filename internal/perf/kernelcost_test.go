package perf

import (
	"testing"

	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/rng"
)

func TestMeasureKernelCostSane(t *testing.T) {
	c := MeasureKernelCost()
	if c.P2PSeconds <= 0 || c.MACSeconds <= 0 {
		t.Fatalf("non-positive kernel cost: %+v", c)
	}
	// Both kernels run tens of ns per op at worst on any machine this
	// code targets; a second per op means the timer loop is broken.
	if c.P2PSeconds > 1e-6 || c.MACSeconds > 1e-6 {
		t.Errorf("implausibly slow kernel cost: %+v", c)
	}
}

func TestWithKernelCost(t *testing.T) {
	h := DS10()
	c := KernelCost{P2PSeconds: 1e-9, MACSeconds: 2e-9}
	m := h.WithKernelCost(c)
	if m.VisitCoeff != c.MACSeconds || m.P2PCoeff != c.P2PSeconds {
		t.Errorf("measured coefficients not applied: %+v", m)
	}
	if m.BuildCoeff != h.BuildCoeff || m.WalkCoeff != h.WalkCoeff || m.ParticleCoeff != h.ParticleCoeff {
		t.Errorf("memory-bound coefficients must be kept: %+v", m)
	}
	if h.P2PCoeff != 0 {
		t.Errorf("DS10 calibration gained a host force term: %+v", h)
	}
}

func TestHostForceSeconds(t *testing.T) {
	if s := DS10().HostForceSeconds(1e9); s != 0 {
		t.Errorf("unmeasured model priced host forces at %v s", s)
	}
	h := DS10().WithKernelCost(KernelCost{P2PSeconds: 2e-9, MACSeconds: 1e-9})
	if s := h.HostForceSeconds(1e9); s != 2.0 {
		t.Errorf("HostForceSeconds = %v, want 2.0", s)
	}
}

// TestFasterHostShiftsOptimumDown pins the direction of the n_g balance
// under a faster host term: cheaper opening tests make short lists
// affordable again, so the optimal group size cannot grow.
func TestFasterHostShiftsOptimumDown(t *testing.T) {
	s := nbody.Plummer(3000, 1, 1, 1, rng.New(4))
	ncrits := []int{50, 100, 200, 500, 1000, 2000}
	slow := DS10()
	fast := slow.WithKernelCost(KernelCost{
		P2PSeconds: 1e-9,
		MACSeconds: slow.VisitCoeff / 4, // the batched MAC's measured class of win
	})
	cfg := g5.DefaultConfig()
	ps, err := NgSweep(s.Clone(), 0.75, ncrits, slow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := NgSweep(s.Clone(), 0.75, ncrits, fast, cfg)
	if err != nil {
		t.Fatal(err)
	}
	os_ := ps[OptimumIndex(ps)].Ncrit
	of := pf[OptimumIndex(pf)].Ncrit
	if of > os_ {
		t.Errorf("faster host moved optimum n_g up: %d -> %d", os_, of)
	}
	// The K-board restatement must hold for the measured model too:
	// more boards never shrink the optimal group size.
	if a, b := OptimalNcritK(pf, 1), OptimalNcritK(pf, 4); b < a {
		t.Errorf("OptimalNcritK decreasing in K: K=1 %d, K=4 %d", a, b)
	}
}
