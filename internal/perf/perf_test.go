package perf

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/units"
)

// TestPaperCost is experiment E7: §4's cost arithmetic.
func TestPaperCost(t *testing.T) {
	c := PaperCostModel()
	if got := c.TotalJYE(); got != 4.7e6 {
		t.Errorf("total = %v JYE, want 4.7M", got)
	}
	dollars := c.TotalDollars()
	if math.Abs(dollars-40900) > 100 {
		t.Errorf("total = $%v, paper quotes ~$40,900", dollars)
	}
}

// TestPaperGordonBell verifies the §5 headline arithmetic from the
// paper's own totals: 36.4 raw Gflops, 5.92 effective Gflops,
// $7.0/Mflops.
func TestPaperGordonBell(t *testing.T) {
	gb := PaperGordonBell()
	if raw := gb.RawFlops() / 1e9; math.Abs(raw-units.PaperRawGflops) > 0.4 {
		t.Errorf("raw = %.2f Gflops, paper quotes %.1f", raw, units.PaperRawGflops)
	}
	if eff := gb.EffectiveFlops() / 1e9; math.Abs(eff-units.PaperEffectiveGflops) > 0.1 {
		t.Errorf("effective = %.2f Gflops, paper quotes %.2f", eff, units.PaperEffectiveGflops)
	}
	if ppm := gb.PricePerMflops(); math.Abs(ppm-units.PaperPricePerMflops) > 0.2 {
		t.Errorf("price/perf = $%.2f/Mflops, paper quotes $%.1f", ppm, units.PaperPricePerMflops)
	}
	if gb.String() == "" {
		t.Error("empty String")
	}
}

// TestDS10CalibratedToHeadline checks the host model against its
// anchor: at the headline run's traversal statistics the modelled step
// must total ≈30.17 s (paper: 30,141 s / 999 steps), with the GRAPE
// side supplied by the g5 timing model.
func TestDS10CalibratedToHeadline(t *testing.T) {
	const nGroups = 1080 // 2,159,038 / ~2000
	perStepInteractions := float64(units.PaperInteractions) / float64(units.PaperSteps)
	st := &core.Stats{
		N:            units.PaperN,
		Groups:       nGroups,
		Interactions: int64(perStepInteractions),
		ListSum:      int64(nGroups * units.PaperAvgListLength),
		// Node visits: roughly 3 opening tests per list entry is what
		// our traversal measures on clustered snapshots.
		NodesVisited: int64(3 * nGroups * units.PaperAvgListLength),
	}
	sys, err := g5.NewSystem(g5.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScale(-100, 100); err != nil {
		t.Fatal(err)
	}
	for gi := 0; gi < nGroups; gi++ {
		sys.ChargeOnly(2000, int(units.PaperAvgListLength))
	}
	rep := ModelStep(DS10(), st, sys.Counters())
	wantStep := units.PaperWallClockSeconds / units.PaperSteps
	got := rep.TotalSeconds()
	t.Logf("modelled step: host %.2f s + pipe %.2f s + bus %.2f s = %.2f s (paper %.2f s)",
		rep.HostSeconds, rep.PipeSeconds, rep.BusSeconds, got, wantStep)
	if math.Abs(got-wantStep)/wantStep > 0.10 {
		t.Errorf("modelled step %.2f s differs from paper's %.2f s by >10%%", got, wantStep)
	}
}

func TestHostModelScaling(t *testing.T) {
	h := DS10()
	small := &core.Stats{N: 1000, ListSum: 10000, NodesVisited: 30000}
	big := &core.Stats{N: 2000, ListSum: 20000, NodesVisited: 60000}
	ts, tb := h.StepSeconds(small), h.StepSeconds(big)
	if tb <= ts {
		t.Errorf("host model not monotone in problem size: %v vs %v", ts, tb)
	}
	// Doubling every count slightly more than doubles time (N log N).
	if tb > 2.2*ts {
		t.Errorf("host model superlinearity too strong: %v vs %v", tb, ts)
	}
}

func TestStepReportTotal(t *testing.T) {
	r := StepReport{HostSeconds: 1, PipeSeconds: 2, BusSeconds: 0.5}
	if r.TotalSeconds() != 3.5 {
		t.Errorf("total = %v", r.TotalSeconds())
	}
}

func TestRunModelExtrapolation(t *testing.T) {
	m := RunModel{
		Steps:             999,
		PerStep:           StepReport{HostSeconds: 15, PipeSeconds: 10, BusSeconds: 5, Interactions: 2.9e10},
		OriginalPerStep:   4.69e9,
		OpsPerInteraction: 38,
		Cost:              PaperCostModel(),
	}
	if math.Abs(m.TotalSeconds()-999*30) > 1e-9 {
		t.Errorf("total = %v", m.TotalSeconds())
	}
	gb := m.GordonBell()
	if math.Abs(gb.Interactions-999*2.9e10) > 1 {
		t.Errorf("interactions = %v", gb.Interactions)
	}
	if gb.RawFlops() <= gb.EffectiveFlops() {
		t.Error("raw must exceed effective")
	}
}

func TestPricePerMflopsInverse(t *testing.T) {
	c := PaperCostModel()
	// Double the speed, half the price per Mflops.
	p1 := c.PricePerMflops(1e9)
	p2 := c.PricePerMflops(2e9)
	if math.Abs(p1-2*p2) > 1e-9 {
		t.Errorf("price/perf not inverse in speed: %v vs %v", p1, p2)
	}
}
