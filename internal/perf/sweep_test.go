package perf

import (
	"testing"

	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/nbody"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestScheduleEngineCounts(t *testing.T) {
	sys, _ := g5.NewSystem(g5.DefaultConfig())
	sys.SetScale(-10, 10)
	e := NewScheduleEngine(sys)
	req := &core.Request{
		IPos: make([]vec.V3, 5),
		Acc:  make([]vec.V3, 5),
		Pot:  make([]float64, 5),
	}
	for j := 0; j < 7; j++ {
		req.J.Append(float64(j), 0, 0, 1)
	}
	req.J.Pad()
	e.Accumulate(req)
	if c := e.System().Counters(); c.Interactions != 35 {
		t.Errorf("interactions = %d, want 35", c.Interactions)
	}
	// No force output: accelerations stay zero.
	for _, a := range req.Acc {
		if a != vec.Zero {
			t.Error("schedule engine wrote forces")
		}
	}
}

func TestScheduleEngineMatchesRealCounts(t *testing.T) {
	// The schedule engine must report the same interaction count as a
	// counting engine on the same traversal.
	s := nbody.Plummer(2000, 1, 1, 1, rng.New(5))
	ce := &core.CountEngine{}
	st, err := core.New(core.Options{Theta: 0.75, Ncrit: 128}, ce).ComputeForces(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := g5.NewSystem(g5.DefaultConfig())
	sys.SetScale(-100, 100)
	se := NewScheduleEngine(sys)
	if _, err := core.New(core.Options{Theta: 0.75, Ncrit: 128}, se).ComputeForces(s.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := sys.Counters().Interactions; got != st.Interactions {
		t.Errorf("schedule count %d != count engine %d", got, st.Interactions)
	}
}

func TestNgSweepShape(t *testing.T) {
	// The §3 trade-off on a small snapshot: host time decreases with
	// n_g, GRAPE time increases, and the interactions are monotone.
	s := nbody.Plummer(8000, 1, 1, 1, rng.New(9))
	ncrits := []int{8, 64, 512, 4096}
	points, err := NgSweep(s, 0.75, ncrits, DS10(), g5.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ncrits) {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Interactions <= points[i-1].Interactions {
			t.Errorf("interactions not increasing: %d -> %d at ncrit %d",
				points[i-1].Interactions, points[i].Interactions, points[i].Ncrit)
		}
		if points[i].Groups >= points[i-1].Groups {
			t.Errorf("groups not decreasing at ncrit %d", points[i].Ncrit)
		}
	}
	// Pipeline time is NOT monotone: groups smaller than the 96 virtual
	// pipelines per board waste pipeline slots (ceil(n_i/96) padding), so
	// hardware time first falls as groups fill the pipelines, then rises
	// with the growing interaction count. Assert both regimes.
	if points[0].Report.PipeSeconds <= points[1].Report.PipeSeconds {
		t.Errorf("padding regime: pipe time should fall from ncrit=8 (%.4f s) to 64 (%.4f s)",
			points[0].Report.PipeSeconds, points[1].Report.PipeSeconds)
	}
	pipeLast, pipePrev := points[len(points)-1].Report.PipeSeconds, points[len(points)-2].Report.PipeSeconds
	if pipeLast <= pipePrev {
		t.Errorf("interaction regime: pipe time should rise from ncrit=512 (%.4f s) to 4096 (%.4f s)",
			pipePrev, pipeLast)
	}
	// Host walk share must shrink as n_g grows (that is the whole
	// point of the modified algorithm).
	first := points[0].Report.HostSeconds
	last := points[len(points)-1].Report.HostSeconds
	if last >= first {
		t.Errorf("host time did not drop with n_g: %v -> %v", first, last)
	}
}

func TestOptimum(t *testing.T) {
	points := []SweepPoint{
		{Ncrit: 10, Report: StepReport{HostSeconds: 10}},
		{Ncrit: 100, Report: StepReport{HostSeconds: 3}},
		{Ncrit: 1000, Report: StepReport{HostSeconds: 5}},
	}
	best := Optimum(points)
	if best == nil || best.Ncrit != 100 {
		t.Errorf("optimum = %+v", best)
	}
	if Optimum(nil) != nil {
		t.Error("empty sweep should give nil")
	}
}
