// Package perf implements the paper's performance and cost accounting:
// the flop-counting convention, the DS10 host-time model, the Gordon
// Bell metrics (sustained Gflops, effective Gflops, price/performance)
// and the cost model of §4.
//
// The paper's wall-clock numbers come from hardware we do not have, so
// the host side is modelled: an analytic cost model of the COMPAQ
// AlphaServer DS10 (Alpha 21264 @ 466 MHz) whose three coefficients are
// calibrated so the modelled headline run reproduces the paper's
// 30,141 s total. The GRAPE side comes from the g5 timing model, which
// is anchored in hardware constants (clocks, pipe counts, bus). The
// resulting model is predictive in the quantity that matters for §3:
// the RATIO of host to GRAPE time as a function of n_g.
package perf

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/g5"
	"repro/internal/units"
)

// CostModel is the §4 price list.
type CostModel struct {
	// BoardJYE is the price of one GRAPE-5 board in Japanese yen.
	BoardJYE float64
	// Boards is the number of boards purchased.
	Boards int
	// HostJYE is the price of the host computer (DS10 with 512 MB and
	// the C++ compiler).
	HostJYE float64
	// YenPerDollar is the exchange rate used in the paper.
	YenPerDollar float64
}

// PaperCostModel returns §4's numbers: 2 boards at 1.65 M JYE, host at
// 1.4 M JYE, 115 JYE/$.
func PaperCostModel() CostModel {
	return CostModel{BoardJYE: 1.65e6, Boards: 2, HostJYE: 1.4e6, YenPerDollar: 115}
}

// TotalJYE returns the system cost in yen (4.7 M JYE for the paper).
func (c CostModel) TotalJYE() float64 {
	return c.BoardJYE*float64(c.Boards) + c.HostJYE
}

// TotalDollars returns the system cost in dollars (~$40,900).
func (c CostModel) TotalDollars() float64 { return c.TotalJYE() / c.YenPerDollar }

// PricePerMflops returns dollars per Mflops for a sustained speed in
// flops/s.
func (c CostModel) PricePerMflops(flopsPerSecond float64) float64 {
	return c.TotalDollars() / (flopsPerSecond / 1e6)
}

// HostModel is the analytic cost model of the host computer's per-step
// work. Times are seconds of modelled host time:
//
//	T = BuildCoeff · N·log2(N)            (tree construction)
//	  + WalkCoeff  · ListSum              (interaction-list assembly)
//	  + VisitCoeff · NodesVisited         (opening tests / stack work)
//	  + ParticleCoeff · N                 (time integration + bookkeeping)
type HostModel struct {
	Name          string
	BuildCoeff    float64
	WalkCoeff     float64
	VisitCoeff    float64
	ParticleCoeff float64
	// P2PCoeff is the host's measured per-interaction force cost
	// (seconds per softened pairwise interaction through hostk.P2P).
	// Zero means unmeasured: StepSeconds then models an offload-only
	// host, exactly the original DS10 calibration. Set it via
	// WithKernelCost(MeasureKernelCost()) to price host-engine runs
	// and guard fallbacks on the actual machine.
	P2PCoeff float64
}

// DS10 returns the host model of the COMPAQ AlphaServer DS10
// (Alpha 21264, 466 MHz). Coefficients are calibrated so the modelled
// headline run (N = 2,159,038, n_g ≈ 2000, average list 13,431, GRAPE
// side ≈ 14.9 s/step from the g5 timing model) totals the paper's
// 30.17 s/step: host ≈ 15.3 s/step split as build ≈ 6.6 s,
// walk+visits ≈ 7.4 s, integration ≈ 1.3 s. In cycle terms the
// coefficients correspond to ~68 cycles per build op, ~100 cycles per
// list entry, ~47 cycles per node visit and ~280 cycles per particle
// update — ordinary magnitudes for a 1999 RISC workstation running
// pointer-chasing tree code.
func DS10() HostModel {
	return HostModel{
		Name:          "COMPAQ AlphaServer DS10 (21264/466MHz)",
		BuildCoeff:    1.45e-7,
		WalkCoeff:     2.2e-7,
		VisitCoeff:    1.0e-7,
		ParticleCoeff: 6.0e-7,
	}
}

// StepSeconds returns the modelled host seconds for one force step with
// the given traversal statistics.
func (h HostModel) StepSeconds(st *core.Stats) float64 {
	n := float64(st.N)
	return h.BuildSeconds(st.N) +
		h.WalkCoeff*float64(st.ListSum) +
		h.VisitCoeff*float64(st.NodesVisited) +
		h.ParticleCoeff*n
}

// BuildSeconds returns the tree-construction share of the modelled host
// step time for n particles — the model-side counterpart of the
// measured t_build split (Morton sort + tree build).
func (h HostModel) BuildSeconds(n int) float64 {
	fn := float64(n)
	return h.BuildCoeff * fn * math.Log2(math.Max(fn, 2))
}

// StepReport is the modelled time balance of one force step.
type StepReport struct {
	// HostSeconds is the modelled host time (build + walk + integrate).
	HostSeconds float64
	// HostBuildSeconds is the tree-construction share of HostSeconds —
	// the t_build split, which parallel tree construction attacks while
	// the rest of the host time shrinks with n_g.
	HostBuildSeconds float64
	// PipeSeconds and BusSeconds are the GRAPE pipeline and
	// host-interface times from the g5 timing model.
	PipeSeconds, BusSeconds float64
	// Interactions is the pairwise interaction count of the step.
	Interactions int64
	// Recovery carries the guard's fault-handling counters when the
	// step ran through a fault-tolerant engine (zero otherwise): a
	// degraded step's timing is only interpretable next to its
	// retries, exclusions and fallbacks.
	Recovery g5.Recovery
}

// TotalSeconds returns the modelled wall-clock of the step. Host work
// and GRAPE work are serialised, as in the paper's code (the host
// walks the tree for group k+1 only after collecting forces for k; the
// overlap GRAPE-4-style drivers exploited is not used by the GRAPE-5
// treecode).
func (r StepReport) TotalSeconds() float64 { return r.HostSeconds + r.PipeSeconds + r.BusSeconds }

// ModelStep combines the host model with the g5 counters accumulated
// during one step (counters must be reset around the step).
func ModelStep(h HostModel, st *core.Stats, c g5.Counters) StepReport {
	return StepReport{
		HostSeconds:      h.StepSeconds(st),
		HostBuildSeconds: h.BuildSeconds(st.N),
		PipeSeconds:      c.PipeSeconds,
		BusSeconds:       c.BusSeconds,
		Interactions:     st.Interactions,
	}
}

// ModelStepRecovery is ModelStep for a step driven through the
// fault-tolerant offload path: the report carries the guard's recovery
// counters alongside the (possibly degraded) timing.
func ModelStepRecovery(h HostModel, st *core.Stats, c g5.Counters, rec g5.Recovery) StepReport {
	r := ModelStep(h, st, c)
	r.Recovery = rec
	return r
}

// GordonBell computes the paper's §5 headline metrics.
type GordonBell struct {
	// Interactions is the total modified-algorithm interaction count.
	Interactions float64
	// OriginalInteractions is the interaction count the original
	// algorithm would have needed (the paper's correction basis).
	OriginalInteractions float64
	// WallClockSeconds is the total run time.
	WallClockSeconds float64
	// OpsPerInteraction is the flop convention (38).
	OpsPerInteraction int
	// Cost is the price list.
	Cost CostModel
}

// RawFlops returns the sustained speed counting the modified
// algorithm's operations (the paper's 36.4 Gflops figure).
func (g GordonBell) RawFlops() float64 {
	return g.Interactions * float64(g.OpsPerInteraction) / g.WallClockSeconds
}

// EffectiveFlops returns the sustained speed counting only the
// operations the original algorithm would need — the paper's
// conservative 5.92 Gflops figure.
func (g GordonBell) EffectiveFlops() float64 {
	return g.OriginalInteractions * float64(g.OpsPerInteraction) / g.WallClockSeconds
}

// PricePerMflops returns the headline metric: dollars per effective
// Mflops ($7.0 in the paper).
func (g GordonBell) PricePerMflops() float64 {
	return g.Cost.PricePerMflops(g.EffectiveFlops())
}

// PaperGordonBell returns the paper's own totals, for cross-checking
// the arithmetic.
func PaperGordonBell() GordonBell {
	return GordonBell{
		Interactions:         units.PaperInteractions,
		OriginalInteractions: units.PaperOriginalInteractions,
		WallClockSeconds:     units.PaperWallClockSeconds,
		OpsPerInteraction:    units.PaperOpsPerInteraction,
		Cost:                 PaperCostModel(),
	}
}

// String formats the metrics like the paper's abstract.
func (g GordonBell) String() string {
	return fmt.Sprintf("raw %.2f Gflops, effective %.2f Gflops, $%.1f/Mflops (system $%.0f)",
		g.RawFlops()/1e9, g.EffectiveFlops()/1e9, g.PricePerMflops(), g.Cost.TotalDollars())
}
