package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	n, err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("bytes = %d, want 5", n)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("contents = %q", got)
	}
	assertNoTemps(t, dir)
}

func TestAtomicWriteFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	for _, payload := range []string{"first generation", "second"} {
		p := payload
		if _, err := AtomicWriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, p)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("contents = %q, want the replacement", got)
	}
	assertNoTemps(t, dir)
}

func TestAtomicWriteFileFailedWriteLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("payload failure")
	if _, err := AtomicWriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "half a pay"); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped payload failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous" {
		t.Errorf("target corrupted by failed write: %q", got)
	}
	assertNoTemps(t, dir)
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}
