// Package fsx provides the crash-safe filesystem primitives shared by
// the snapshot and checkpoint writers: a file that is either fully
// present with its final contents or absent, never torn. A multi-day
// run killed mid-write must find its durable state intact on restart.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file so that a crash at any instant leaves
// either the previous contents of path (or no file) or the complete new
// contents — never a torn mix. The sequence is the classic one: write
// to a temporary file in the same directory, fsync it, rename over the
// target, fsync the directory so the rename itself is durable.
//
// write receives the temporary file's writer and produces the payload;
// the number of payload bytes is returned on success. On any error the
// temporary file is removed and the target is untouched.
func AtomicWriteFile(path string, write func(w io.Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("fsx: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (int64, error) {
		tmp.Close()
		if rmErr := os.Remove(tmpName); rmErr != nil && !os.IsNotExist(rmErr) {
			err = fmt.Errorf("%w (and removing temp: %v)", err, rmErr)
		}
		return 0, err
	}

	cw := &countWriter{w: tmp}
	if err := write(cw); err != nil {
		return fail(fmt.Errorf("fsx: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("fsx: fsync %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("fsx: closing %s: %w", tmpName, err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fail(fmt.Errorf("fsx: renaming into %s: %w", path, err))
	}
	if err := SyncDir(dir); err != nil {
		// The rename already happened; the file is in place but its
		// directory entry may not be durable. Surface it — callers that
		// promise durability must not swallow this.
		return cw.n, err
	}
	return cw.n, nil
}

// SyncDir fsyncs a directory so that renames and removals inside it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsx: opening dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("fsx: fsync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("fsx: closing dir %s: %w", dir, err)
	}
	return nil
}

// countWriter counts the bytes passed through to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
