package serve_test

// End-to-end service tests against an in-process loopback daemon: N
// concurrent tenants, fair completion order under weighted round
// robin, explicit 429 backpressure (a saturated server must reject
// loudly, never block or drop), and the determinism contract — every
// accepted job's final result bytes identical to the same configuration
// run through the Simulation API directly.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	grape5 "repro"
	"repro/internal/ckpt"
	"repro/internal/serve"
)

// testServer is an in-process loopback simd.
type testServer struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, o serve.Options) *testServer {
	t.Helper()
	srv, err := serve.NewServer(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	// LIFO: the serve.Server must drain (closing SSE streams) before the
	// httptest server waits on its outstanding handlers.
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return &testServer{srv: srv, ts: ts}
}

func (e *testServer) url(path string) string { return e.ts.URL + path }

// postJob submits a job request body, returning the HTTP status and
// decoded response.
func (e *testServer) postJob(t *testing.T, body string) (int, serve.JobStatus, http.Header) {
	t.Helper()
	resp, err := http.Post(e.url("/jobs"), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad job response %q: %v", data, err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

// mustSubmit submits and requires 202.
func (e *testServer) mustSubmit(t *testing.T, body string) serve.JobStatus {
	t.Helper()
	code, st, _ := e.postJob(t, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit %q: status %d", body, code)
	}
	return st
}

// getJSON decodes a GET response into out.
func (e *testServer) getJSON(t *testing.T, path string, out any) {
	t.Helper()
	resp, err := http.Get(e.url(path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// waitState polls a job until it reaches a terminal state.
func (e *testServer) waitTerminal(t *testing.T, id string, timeout time.Duration) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st serve.JobStatus
		e.getJSON(t, "/jobs/"+id, &st)
		switch st.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func jobBody(tenant string, n, steps int) string {
	return fmt.Sprintf(`{"tenant":%q,"model":"plummer","n":%d,"steps":%d}`, tenant, n, steps)
}

// TestE2EFairRotation: three equal-weight tenants each submit a
// backlog; with one run slot the completion order must be a strict
// rotation — no tenant finishes job k+1 before every tenant finished
// job k.
func TestE2EFairRotation(t *testing.T) {
	e := newTestServer(t, serve.Options{
		Budget:      serve.Budget{MaxRunning: 1, MaxQueuedPerTenant: 8, MaxQueueTotal: 64},
		StartPaused: true,
	})
	tenants := []string{"alice", "bob", "carol"}
	const perTenant = 3
	ids := make(map[string]string) // job id -> tenant
	// Submit each tenant's whole backlog in turn; fairness must come
	// from the scheduler, not from interleaved submission order.
	for _, tn := range tenants {
		for k := 0; k < perTenant; k++ {
			st := e.mustSubmit(t, jobBody(tn, 64, 2))
			ids[st.ID] = tn
		}
	}
	e.srv.SetPaused(false)
	finished := make([]serve.JobStatus, 0, len(ids))
	for id := range ids {
		finished = append(finished, e.waitTerminal(t, id, 60*time.Second))
	}
	order := completionOrder(t, finished)
	for i, st := range order {
		if st.State != serve.StateDone {
			t.Fatalf("job %s finished %s (%s)", st.ID, st.State, st.Error)
		}
		if want := tenants[i%len(tenants)]; ids[st.ID] != want {
			t.Fatalf("completion %d is tenant %s, want %s (order %v)",
				i, ids[st.ID], want, tenantOrder(order, ids))
		}
	}
}

// completionOrder sorts finished jobs by their done_seq.
func completionOrder(t *testing.T, jobs []serve.JobStatus) []serve.JobStatus {
	t.Helper()
	out := append([]serve.JobStatus(nil), jobs...)
	for i := range out {
		if out[i].DoneSeq == 0 {
			t.Fatalf("job %s has no done_seq", out[i].ID)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].DoneSeq > out[j].DoneSeq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func tenantOrder(order []serve.JobStatus, ids map[string]string) []string {
	names := make([]string, len(order))
	for i, st := range order {
		names[i] = ids[st.ID]
	}
	return names
}

// TestE2EWeightedFairness: with weights alice=2, bob=1 and both tenants
// backlogged, every completion window of 3 must contain alice twice and
// bob once — the WRR credit contract.
func TestE2EWeightedFairness(t *testing.T) {
	e := newTestServer(t, serve.Options{
		Budget: serve.Budget{
			MaxRunning:         1,
			MaxQueuedPerTenant: 8,
			MaxQueueTotal:      64,
			TenantWeights:      map[string]int{"alice": 2, "bob": 1},
		},
		StartPaused: true,
	})
	ids := make(map[string]string)
	for k := 0; k < 6; k++ {
		ids[e.mustSubmit(t, jobBody("alice", 64, 2)).ID] = "alice"
	}
	for k := 0; k < 3; k++ {
		ids[e.mustSubmit(t, jobBody("bob", 64, 2)).ID] = "bob"
	}
	e.srv.SetPaused(false)
	finished := make([]serve.JobStatus, 0, len(ids))
	for id := range ids {
		finished = append(finished, e.waitTerminal(t, id, 60*time.Second))
	}
	order := completionOrder(t, finished)
	for w := 0; w+3 <= len(order); w += 3 {
		count := map[string]int{}
		for _, st := range order[w : w+3] {
			count[ids[st.ID]]++
		}
		if count["alice"] != 2 || count["bob"] != 1 {
			t.Fatalf("window %d: got %v, want alice=2 bob=1 (order %v)",
				w/3, count, tenantOrder(order, ids))
		}
	}
}

// TestE2EBackpressure: a saturated queue answers 429 with a Retry-After
// hint — and every job that was accepted still completes once the
// pressure lifts. Nothing blocks, nothing is silently dropped.
func TestE2EBackpressure(t *testing.T) {
	e := newTestServer(t, serve.Options{
		Budget: serve.Budget{
			MaxRunning:         1,
			MaxQueuedPerTenant: 2,
			MaxQueueTotal:      3,
			RetryAfter:         2 * time.Second,
		},
		StartPaused: true,
	})
	var accepted []string
	// Tenant queue bound: third submission for the same tenant is 429.
	for k := 0; k < 2; k++ {
		accepted = append(accepted, e.mustSubmit(t, jobBody("alice", 64, 2)).ID)
	}
	code, _, hdr := e.postJob(t, jobBody("alice", 64, 2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit got %d, want 429", code)
	}
	if got := hdr.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	// Total queue bound: bob fits once, then the server is full.
	accepted = append(accepted, e.mustSubmit(t, jobBody("bob", 64, 2)).ID)
	code, _, hdr = e.postJob(t, jobBody("carol", 64, 2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("server-full submit got %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("server-full 429 lacks Retry-After")
	}
	var m serve.Metrics
	e.getJSON(t, "/metrics", &m)
	if m.JobsRejected != 2 {
		t.Errorf("jobs_rejected = %d, want 2", m.JobsRejected)
	}
	if m.QueueDepth != 3 {
		t.Errorf("queue_depth = %d, want 3", m.QueueDepth)
	}
	// Pressure lifts: everything accepted completes.
	e.srv.SetPaused(false)
	for _, id := range accepted {
		if st := e.waitTerminal(t, id, 60*time.Second); st.State != serve.StateDone {
			t.Errorf("accepted job %s finished %s (%s)", id, st.State, st.Error)
		}
	}
	e.getJSON(t, "/metrics", &m)
	if m.JobsCompleted != int64(len(accepted)) {
		t.Errorf("jobs_completed = %d, want %d", m.JobsCompleted, len(accepted))
	}
	for i := 1; i < len(m.Tenants); i++ {
		if m.Tenants[i-1].Tenant >= m.Tenants[i].Tenant {
			t.Errorf("tenants not sorted: %q before %q", m.Tenants[i-1].Tenant, m.Tenants[i].Tenant)
		}
	}
}

// referenceResult runs a job spec through the Simulation API directly
// and marshals the final state exactly as the server does.
func referenceResult(t *testing.T, body string) []byte {
	t.Helper()
	spec, err := serve.DecodeJobRequest(strings.NewReader(body), serve.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := grape5.NewSimulation(spec.NewSystem(), spec.SimConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := sim.Close(); cerr != nil {
			t.Errorf("reference close: %v", cerr)
		}
	}()
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	for sim.Steps() < spec.Steps {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := ckpt.Marshal(&ckpt.Checkpoint{State: sim.CheckpointState(), Sys: sim.Sys})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestE2EBitwiseIdentity: concurrent jobs across engines and board
// leases — each result must be byte-identical to the same configuration
// run standalone. Multiplexing must not leak between jobs.
func TestE2EBitwiseIdentity(t *testing.T) {
	e := newTestServer(t, serve.Options{
		Budget:  serve.Budget{MaxRunning: 2, Boards: 4, CkptEvery: 2},
		DataDir: t.TempDir(),
	})
	bodies := []string{
		`{"tenant":"alice","model":"plummer","n":96,"steps":4}`,
		`{"tenant":"bob","model":"uniform","n":64,"steps":3,"engine":"grape5"}`,
		`{"tenant":"carol","model":"plummer","n":80,"steps":3,"engine":"grape5","boards":2,"seed":7}`,
		`{"tenant":"alice","model":"plummer","n":96,"steps":4,"theta":0.9,"dt":0.004}`,
	}
	ids := make([]string, len(bodies))
	for i, b := range bodies {
		ids[i] = e.mustSubmit(t, b).ID
	}
	for i, id := range ids {
		st := e.waitTerminal(t, id, 120*time.Second)
		if st.State != serve.StateDone {
			t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
		}
		resp, err := http.Get(e.url("/jobs/" + id + "/result"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: status %d, %v", id, resp.StatusCode, err)
		}
		want := referenceResult(t, bodies[i])
		if !bytes.Equal(got, want) {
			t.Errorf("job %s (%s): result differs from standalone run (%d vs %d bytes) — the shared server leaked state between jobs",
				id, bodies[i], len(got), len(want))
		}
		// The result must round-trip the checkpoint reader: structurally
		// valid, CRC-clean.
		if _, err := ckpt.Unmarshal(got); err != nil {
			t.Errorf("job %s: result does not parse as a checkpoint: %v", id, err)
		}
	}
	// A result for an unfinished job is a 409, never a torn byte stream.
	resp, err := http.Get(e.url("/jobs/job-999999/result"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("result of unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestE2ERestartRecovery: an in-process "daemon restart" — jobs queued
// in a persistent server survive Close and complete after a new server
// opens the same data directory.
func TestE2ERestartRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newTestServer(t, serve.Options{
		Budget:      serve.Budget{MaxRunning: 1},
		DataDir:     dir,
		StartPaused: true,
	})
	body := jobBody("alice", 64, 3)
	id := e.mustSubmit(t, body).ID
	if err := e.srv.Close(); err != nil {
		t.Fatal(err)
	}
	e.ts.Close()

	e2 := newTestServer(t, serve.Options{Budget: serve.Budget{MaxRunning: 1}, DataDir: dir})
	var listed []serve.JobStatus
	e2.getJSON(t, "/jobs", &listed)
	if len(listed) != 1 || listed[0].ID != id {
		t.Fatalf("restarted server lists %+v, want job %s", listed, id)
	}
	st := e2.waitTerminal(t, id, 60*time.Second)
	if st.State != serve.StateDone {
		t.Fatalf("revived job finished %s (%s)", st.State, st.Error)
	}
	resp, err := http.Get(e2.url("/jobs/" + id + "/result"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, %v", resp.StatusCode, err)
	}
	if want := referenceResult(t, body); !bytes.Equal(got, want) {
		t.Error("revived job's result differs from the standalone run")
	}
}
