package serve

import (
	"sync"

	"repro/internal/obs"
)

// Event is one SSE frame's JSON payload: the job's identity and state
// plus, for step events, the completed step's telemetry.
type Event struct {
	Job   string `json:"job"`
	State string `json:"state"`
	Step  int64  `json:"step"`
	// Report is the completed step's telemetry (absent on pure
	// state-change events).
	Report *obs.StepReport `json:"report,omitempty"`
}

// subChanCap bounds each subscriber's buffer; a slow consumer loses the
// oldest frames, never stalls the stepping loop.
const subChanCap = 32

// hub fans one job's event stream out to any number of SSE subscribers.
// Publishing never blocks: the runner is the simulation's hot loop, and
// a stalled TCP connection must not slow physics. Closed hubs hand new
// subscribers a pre-closed channel, so "subscribe after done" degrades
// to an immediate final-status frame.
type hub struct {
	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

// subscribe registers a new subscriber channel.
func (h *hub) subscribe() chan []byte {
	ch := make(chan []byte, subChanCap)
	h.mu.Lock()
	if h.closed {
		close(ch)
	} else {
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	return ch
}

// unsubscribe removes a subscriber; safe after close.
func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
	}
	h.mu.Unlock()
}

// publish delivers a frame to every subscriber, dropping the oldest
// buffered frame of any subscriber that has fallen subChanCap behind.
func (h *hub) publish(frame []byte) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- frame:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- frame:
			default:
			}
		}
	}
	h.mu.Unlock()
}

// close terminates the stream: every subscriber's channel closes (its
// handler then emits the final status frame) and future subscribers get
// a pre-closed channel.
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for ch := range h.subs {
			close(ch)
			delete(h.subs, ch)
		}
	}
	h.mu.Unlock()
}
