// Package serve is the multi-tenant simulation job server: a long-lived
// daemon that accepts treecode simulation jobs over HTTP JSON, admits
// them against a configurable resource budget, multiplexes concurrent
// runs onto a shared board pool under deterministic weighted-round-robin
// per-tenant scheduling with bounded queues and explicit backpressure,
// streams per-step telemetry over SSE, and persists job state through
// the checkpoint layer so a killed daemon resumes in-flight jobs on
// restart — bitwise identical to the uninterrupted runs.
//
// This is the GRAPE operating model at the service layer: the paper's
// $7.0/Mflops board cluster was shared infrastructure, and sharing is
// only honest if admission is explicit (429, never a silent drop),
// scheduling is fair (a heavy tenant cannot starve a light one), and
// results are reproducible (a job's bytes do not depend on what else
// the server was running).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	grape5 "repro"
)

// Models and engines a job may request.
const (
	ModelPlummer = "plummer"
	ModelUniform = "uniform"

	EngineHost   = "host"
	EngineGRAPE5 = "grape5"
)

// JobRequest is the POST /jobs wire format. Every field except model and
// n is optional; zero values resolve to documented defaults during
// validation.
type JobRequest struct {
	// Tenant is the submitting tenant's identity (default "default");
	// fairness and queue bounds are accounted per tenant.
	Tenant string `json:"tenant"`
	// Model is the initial-conditions model: "plummer" or "uniform".
	Model string `json:"model"`
	// N is the particle count.
	N int `json:"n"`
	// Steps is the number of integration steps to run.
	Steps int `json:"steps"`
	// Theta is the Barnes-Hut opening parameter (default 0.75).
	Theta float64 `json:"theta"`
	// Ncrit is the group-size bound n_g (default 2000).
	Ncrit int `json:"ncrit"`
	// DT is the integration timestep (default per model).
	DT float64 `json:"dt"`
	// Eps is the softening length (default 0.02).
	Eps float64 `json:"eps"`
	// Seed is the IC generator seed (default 1).
	Seed uint64 `json:"seed"`
	// Engine is "host" (default) or "grape5".
	Engine string `json:"engine"`
	// Boards is the number of boards to lease from the server pool
	// (grape5 engine only; default 1; host jobs must leave it 0).
	Boards int `json:"boards"`
}

// JobSpec is a validated, fully-resolved job configuration: every field
// is concrete, every bound checked against the admitting budget. It is
// the unit the scheduler, the runner and the reference harness all
// agree on — DecodeJobRequest is the only way to make one from wire
// bytes, so a spec in hand is a spec within budget.
type JobSpec struct {
	Tenant string  `json:"tenant"`
	Model  string  `json:"model"`
	N      int     `json:"n"`
	Steps  int     `json:"steps"`
	Theta  float64 `json:"theta"`
	Ncrit  int     `json:"ncrit"`
	DT     float64 `json:"dt"`
	Eps    float64 `json:"eps"`
	Seed   uint64  `json:"seed"`
	Engine string  `json:"engine"`
	Boards int     `json:"boards"`
}

// Default model timesteps: a Plummer sphere in model units tolerates a
// coarser step than the colder uniform sphere.
const (
	defaultDTPlummer = 0.005
	defaultDTUniform = 0.002
	defaultTheta     = 0.75
	defaultNcrit     = 2000
	defaultEps       = 0.02
	minParticles     = 16
)

// finitePositive rejects NaN, Inf, zero and negatives in one breath.
func finitePositive(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("%s must be finite and positive, got %v", name, v)
	}
	return nil
}

// validTenant enforces the tenant-name charset: 1–32 characters of
// [a-zA-Z0-9._-]. Names reach filesystem paths and log lines, so the
// alphabet is closed, not advisory.
func validTenant(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// DecodeJobRequest reads one JSON job request and resolves it into a
// validated JobSpec under the given budget. It is strict in every
// direction the fuzzer probes: unknown fields, trailing garbage,
// non-finite or negative numerics and over-budget requests are all loud
// errors — an invalid configuration is never admitted, and no input
// panics.
func DecodeJobRequest(r io.Reader, b Budget) (JobSpec, error) {
	b = b.withDefaults()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return JobSpec{}, fmt.Errorf("decode: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return JobSpec{}, errors.New("decode: trailing data after request object")
	}
	return resolveSpec(req, b)
}

// resolveSpec applies defaults and validates every field against the
// budget. It never mutates shared state: the same request resolves to
// the same spec on every server.
func resolveSpec(req JobRequest, b Budget) (JobSpec, error) {
	s := JobSpec{
		Tenant: req.Tenant,
		Model:  req.Model,
		N:      req.N,
		Steps:  req.Steps,
		Theta:  req.Theta,
		Ncrit:  req.Ncrit,
		DT:     req.DT,
		Eps:    req.Eps,
		Seed:   req.Seed,
		Engine: req.Engine,
		Boards: req.Boards,
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if !validTenant(s.Tenant) {
		return JobSpec{}, fmt.Errorf("tenant %q: must be 1-32 chars of [a-zA-Z0-9._-]", s.Tenant)
	}
	switch s.Model {
	case ModelPlummer, ModelUniform:
	case "":
		return JobSpec{}, errors.New("model is required (plummer or uniform)")
	default:
		return JobSpec{}, fmt.Errorf("unknown model %q (want plummer or uniform)", s.Model)
	}
	if s.N < minParticles || s.N > b.MaxParticles {
		return JobSpec{}, fmt.Errorf("n=%d out of budget [%d, %d]", s.N, minParticles, b.MaxParticles)
	}
	if s.Steps < 1 || s.Steps > b.MaxSteps {
		return JobSpec{}, fmt.Errorf("steps=%d out of budget [1, %d]", s.Steps, b.MaxSteps)
	}
	if s.Theta == 0 {
		s.Theta = defaultTheta
	}
	if err := finitePositive("theta", s.Theta); err != nil {
		return JobSpec{}, err
	}
	if s.Theta > 2 {
		return JobSpec{}, fmt.Errorf("theta=%v too large (max 2)", s.Theta)
	}
	if s.Ncrit == 0 {
		s.Ncrit = defaultNcrit
	}
	if s.Ncrit < 1 || s.Ncrit > 1<<20 {
		return JobSpec{}, fmt.Errorf("ncrit=%d out of range [1, %d]", s.Ncrit, 1<<20)
	}
	if s.DT == 0 {
		if s.Model == ModelUniform {
			s.DT = defaultDTUniform
		} else {
			s.DT = defaultDTPlummer
		}
	}
	if err := finitePositive("dt", s.DT); err != nil {
		return JobSpec{}, err
	}
	if s.Eps == 0 {
		s.Eps = defaultEps
	}
	if err := finitePositive("eps", s.Eps); err != nil {
		return JobSpec{}, err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	switch s.Engine {
	case "":
		s.Engine = EngineHost
	case EngineHost, EngineGRAPE5:
	default:
		return JobSpec{}, fmt.Errorf("unknown engine %q (want host or grape5)", s.Engine)
	}
	if s.Engine == EngineHost {
		if s.Boards != 0 {
			return JobSpec{}, fmt.Errorf("boards=%d: host-engine jobs lease no boards", s.Boards)
		}
	} else {
		if s.Boards == 0 {
			s.Boards = 1
		}
		if s.Boards < 1 || s.Boards > b.Boards {
			return JobSpec{}, fmt.Errorf("boards=%d out of budget [1, %d]", s.Boards, b.Boards)
		}
	}
	return s, nil
}

// SimConfig translates the spec into the simulation configuration the
// runner and the standalone reference both use. G is 1 (model units).
// A multi-board lease becomes a sharded cluster (bitwise-neutral, PR 3);
// a single board runs the guarded single-system engine.
func (s JobSpec) SimConfig() grape5.Config {
	cfg := grape5.Config{
		Theta: s.Theta,
		Ncrit: s.Ncrit,
		G:     1,
		Eps:   s.Eps,
		DT:    s.DT,
	}
	if s.Engine == EngineGRAPE5 {
		cfg.Engine = grape5.EngineGRAPE5
		if s.Boards > 1 {
			cfg.Shards = s.Boards
		} else {
			cfg.Guard = true
		}
	}
	return cfg
}

// NewSystem builds the spec's initial conditions. Deterministic in the
// spec alone: same spec, same particles, on the server or in a test.
func (s JobSpec) NewSystem() *grape5.System {
	switch s.Model {
	case ModelUniform:
		return grape5.UniformSphere(s.N, 1, 1, s.Seed)
	default:
		return grape5.Plummer(s.N, 1, 1, 1, s.Seed)
	}
}
