package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	grape5 "repro"
	"repro/internal/ckpt"
	"repro/internal/fsx"
)

// runJob executes one admitted job to a terminal state (or to a drain
// checkpoint). It owns the Simulation for the job's whole in-process
// lifetime and reports the outcome through finishJob.
func (s *Server) runJob(ctx context.Context, j *Job) {
	defer s.wg.Done()
	state, errMsg := s.executeJob(ctx, j)
	if errMsg != "" {
		s.logf("job %s (%s): %s", j.id, state, errMsg)
	}
	s.finishJob(j, state, errMsg)
}

// executeJob runs the stepping loop: resume-or-create, prime, step,
// publish telemetry, checkpoint periodically, and marshal the final
// state as the job's result. It returns the job's next state — a
// terminal one, or StateQueued when a drain checkpointed mid-run.
func (s *Server) executeJob(ctx context.Context, j *Job) (state, errMsg string) {
	var store *ckpt.Store
	if j.dir != "" {
		st, err := ckpt.OpenStore(filepath.Join(j.dir, "ckpt"), 2)
		if err != nil {
			return StateFailed, fmt.Sprintf("open checkpoint store: %v", err)
		}
		store = st
	}

	sim, resumed, err := s.openSimulation(j, store)
	if err != nil {
		return StateFailed, err.Error()
	}
	defer func() {
		if cerr := sim.Close(); cerr != nil && state == StateDone {
			state, errMsg = StateFailed, fmt.Sprintf("close: %v", cerr)
		}
	}()
	if resumed >= 0 {
		j.mu.Lock()
		j.resumedFrom = resumed
		j.mu.Unlock()
	}
	j.step.Store(int64(sim.Steps()))

	if !sim.Primed() {
		if err := sim.Prime(); err != nil {
			return StateFailed, fmt.Sprintf("prime: %v", err)
		}
	}

	for sim.Steps() < j.spec.Steps {
		select {
		case <-ctx.Done():
			if j.cancelFlag.Load() {
				return StateCanceled, ""
			}
			// Drain: persist the exact mid-run state and bow out; a
			// restarted daemon resumes from here bitwise.
			if store != nil {
				if _, err := sim.Checkpoint(store); err != nil {
					return StateFailed, fmt.Sprintf("drain checkpoint: %v", err)
				}
			}
			return StateQueued, ""
		default:
		}
		if err := sim.Step(); err != nil {
			return StateFailed, fmt.Sprintf("step %d: %v", sim.Steps()+1, err)
		}
		rep := sim.LastReport
		n := int64(sim.Steps())
		j.step.Store(n)
		j.interactions.Add(rep.Interactions)
		s.stepsServed.Add(1)
		s.interactionsServed.Add(rep.Interactions)
		j.repMu.Lock()
		j.phases.Add(rep.Phases)
		j.lastReport = rep
		j.hasReport = true
		j.lastHealth = sim.Health()
		j.repMu.Unlock()
		if frame, err := json.Marshal(Event{Job: j.id, State: StateRunning, Step: n, Report: &rep}); err == nil {
			j.hub.publish(frame)
		}
		if store != nil && s.budget.CkptEvery > 0 &&
			sim.Steps()%s.budget.CkptEvery == 0 && sim.Steps() < j.spec.Steps {
			if _, err := sim.Checkpoint(store); err != nil {
				return StateFailed, fmt.Sprintf("checkpoint at step %d: %v", sim.Steps(), err)
			}
		}
	}

	result, err := ckpt.Marshal(&ckpt.Checkpoint{State: sim.CheckpointState(), Sys: sim.Sys})
	if err != nil {
		return StateFailed, fmt.Sprintf("marshal result: %v", err)
	}
	if j.dir != "" {
		if _, err := fsx.AtomicWriteFile(filepath.Join(j.dir, "result.g5ck"), func(w io.Writer) error {
			_, werr := w.Write(result)
			return werr
		}); err != nil {
			return StateFailed, fmt.Sprintf("write result: %v", err)
		}
	}
	j.mu.Lock()
	j.result = result
	j.mu.Unlock()
	return StateDone, ""
}

// openSimulation resumes the job from its latest valid checkpoint when
// one exists, otherwise builds it fresh from the spec. The resumed step
// is returned (-1 when starting fresh); a corrupt store is a loud
// failure, never a silent restart of the physics.
func (s *Server) openSimulation(j *Job, store *ckpt.Store) (*grape5.Simulation, int64, error) {
	if store != nil {
		c, gen, err := store.LatestValid()
		switch {
		case err == nil:
			sim, rerr := grape5.ResumeSimulation(c, j.spec.SimConfig())
			if rerr != nil {
				return nil, -1, fmt.Errorf("resume from %s: %w", gen.File, rerr)
			}
			return sim, gen.Step, nil
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// fresh start below
		default:
			return nil, -1, fmt.Errorf("checkpoint store: %w", err)
		}
	}
	sim, err := grape5.NewSimulation(j.spec.NewSystem(), j.spec.SimConfig())
	if err != nil {
		return nil, -1, err
	}
	return sim, -1, nil
}

// jobMeta is the durable job record at <data>/jobs/<id>/job.json.
type jobMeta struct {
	ID          string  `json:"id"`
	Seq         int64   `json:"seq"`
	State       string  `json:"state"`
	Error       string  `json:"error,omitempty"`
	DoneSeq     int64   `json:"done_seq"`
	ResumedFrom int64   `json:"resumed_from"`
	Spec        JobSpec `json:"spec"`
}

// persistMetaLocked durably records the job's current state (no-op in
// memory mode). Called with Server.mu held; takes Job.mu, honoring the
// server-then-job lock order. A failed write is logged and the server
// carries on — the in-memory truth is unaffected and the stale on-disk
// state errs toward re-running the job, never losing it.
func (s *Server) persistMetaLocked(j *Job) {
	if j.dir == "" {
		return
	}
	j.mu.Lock()
	m := jobMeta{
		ID:          j.id,
		Seq:         j.seq,
		State:       j.state,
		Error:       j.errMsg,
		DoneSeq:     j.doneSeq,
		ResumedFrom: j.resumedFrom,
		Spec:        j.spec,
	}
	j.mu.Unlock()
	if _, err := fsx.AtomicWriteFile(filepath.Join(j.dir, "job.json"), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(m)
	}); err != nil {
		s.logf("job %s: persist meta: %v", j.id, err)
	}
}

// loadJobs scans <data>/jobs for persisted jobs at startup. Terminal
// jobs are kept for listing and result retrieval; queued and running
// jobs (a running record means the previous daemon died mid-run) are
// re-queued in seq order, resuming from their checkpoints when the
// runner picks them up.
func (s *Server) loadJobs() error {
	root := filepath.Join(s.opts.DataDir, "jobs")
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var revive []*Job
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		data, err := os.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			s.logf("skipping job dir %s: %v", e.Name(), err)
			continue
		}
		var m jobMeta
		if err := json.Unmarshal(data, &m); err != nil {
			s.logf("skipping job dir %s: bad meta: %v", e.Name(), err)
			continue
		}
		j := &Job{
			id:          m.ID,
			seq:         m.Seq,
			spec:        m.Spec,
			dir:         dir,
			state:       m.State,
			errMsg:      m.Error,
			doneSeq:     m.DoneSeq,
			resumedFrom: m.ResumedFrom,
			hub:         newHub(),
			done:        make(chan struct{}),
		}
		if m.Seq >= s.seq {
			s.seq = m.Seq + 1
		}
		if s.doneSeq < m.DoneSeq {
			s.doneSeq = m.DoneSeq
		}
		switch m.State {
		case StateDone, StateFailed, StateCanceled:
			j.hub.close()
			close(j.done)
			if m.State == StateDone {
				j.step.Store(int64(m.Spec.Steps))
			}
		default:
			j.state = StateQueued
			revive = append(revive, j)
		}
		s.jobs[j.id] = j
		s.jobList = append(s.jobList, j)
	}
	sortJobsBySeq(s.jobList)
	sortJobsBySeq(revive)
	for _, j := range revive {
		t := s.tenantLocked(j.spec.Tenant)
		t.queue = append(t.queue, j)
		s.queueTotal++
	}
	return nil
}

// sortJobsBySeq orders jobs by admission sequence — the stable identity
// restarts preserve.
func sortJobsBySeq(jobs []*Job) {
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
}
