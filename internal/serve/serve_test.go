package serve_test

// Decoder/validator table tests and the JSON-schema golden tests for
// the service's response bodies. The goldens pin the *shape* of the
// wire format (field names and types, recursively), so an accidental
// rename or type change in /jobs or /metrics fails loudly here instead
// of breaking clients silently.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/g5"
	"repro/internal/obs"
	"repro/internal/serve"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testBudget() serve.Budget {
	return serve.Budget{
		MaxParticles: 10_000,
		MaxSteps:     1_000,
		Boards:       4,
	}
}

func decode(t *testing.T, body string) (serve.JobSpec, error) {
	t.Helper()
	return serve.DecodeJobRequest(strings.NewReader(body), testBudget())
}

func TestDecodeJobRequestDefaults(t *testing.T) {
	spec, err := decode(t, `{"model":"plummer","n":100,"steps":5}`)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.JobSpec{
		Tenant: "default", Model: "plummer", N: 100, Steps: 5,
		Theta: 0.75, Ncrit: 2000, DT: 0.005, Eps: 0.02, Seed: 1,
		Engine: "host", Boards: 0,
	}
	if spec != want {
		t.Errorf("resolved spec\n got %+v\nwant %+v", spec, want)
	}
	spec, err = decode(t, `{"model":"uniform","n":100,"steps":5,"engine":"grape5"}`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.DT != 0.002 {
		t.Errorf("uniform default dt = %v, want 0.002", spec.DT)
	}
	if spec.Boards != 1 {
		t.Errorf("grape5 default boards = %d, want 1", spec.Boards)
	}
}

func TestDecodeJobRequestRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", ``, "decode"},
		{"malformed", `{"model":`, "decode"},
		{"unknown field", `{"model":"plummer","n":100,"steps":5,"bogus":1}`, "bogus"},
		{"trailing garbage", `{"model":"plummer","n":100,"steps":5} {"x":1}`, "trailing"},
		{"no model", `{"n":100,"steps":5}`, "model is required"},
		{"bad model", `{"model":"hernquist","n":100,"steps":5}`, "unknown model"},
		{"n too small", `{"model":"plummer","n":4,"steps":5}`, "out of budget"},
		{"n negative", `{"model":"plummer","n":-7,"steps":5}`, "out of budget"},
		{"n over budget", `{"model":"plummer","n":20000,"steps":5}`, "out of budget"},
		{"steps zero", `{"model":"plummer","n":100,"steps":0}`, "out of budget"},
		{"steps over budget", `{"model":"plummer","n":100,"steps":5000}`, "out of budget"},
		{"theta negative", `{"model":"plummer","n":100,"steps":5,"theta":-0.5}`, "theta"},
		{"theta huge", `{"model":"plummer","n":100,"steps":5,"theta":3}`, "theta"},
		{"theta overflow", `{"model":"plummer","n":100,"steps":5,"theta":1e999}`, "decode"},
		{"dt negative", `{"model":"plummer","n":100,"steps":5,"dt":-0.01}`, "dt"},
		{"eps negative", `{"model":"plummer","n":100,"steps":5,"eps":-1}`, "eps"},
		{"ncrit negative", `{"model":"plummer","n":100,"steps":5,"ncrit":-3}`, "ncrit"},
		{"bad engine", `{"model":"plummer","n":100,"steps":5,"engine":"gpu"}`, "unknown engine"},
		{"host with boards", `{"model":"plummer","n":100,"steps":5,"boards":2}`, "lease no boards"},
		{"boards over pool", `{"model":"plummer","n":100,"steps":5,"engine":"grape5","boards":9}`, "out of budget"},
		{"boards negative", `{"model":"plummer","n":100,"steps":5,"engine":"grape5","boards":-1}`, "out of budget"},
		{"bad tenant", `{"tenant":"a/b","model":"plummer","n":100,"steps":5}`, "tenant"},
		{"tenant too long", fmt.Sprintf(`{"tenant":%q,"model":"plummer","n":100,"steps":5}`, strings.Repeat("x", 40)), "tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decode(t, tc.body); err == nil {
				t.Fatalf("accepted %q", tc.body)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// shapeOf reduces a decoded JSON value to its schema shape: objects map
// field name to the field's shape, arrays reduce to their (first)
// element's shape, scalars reduce to their JSON type name.
func shapeOf(t *testing.T, path string, v any) any {
	t.Helper()
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = shapeOf(t, path+"."+k, e)
		}
		return out
	case []any:
		if len(x) == 0 {
			t.Fatalf("golden sample has empty array at %s — populate it so the element schema is pinned", path)
		}
		return []any{shapeOf(t, path+"[0]", x[0])}
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	case nil:
		return "null"
	default:
		t.Fatalf("unexpected JSON value at %s: %T", path, v)
		return nil
	}
}

// schemaJSON marshals v, decodes it back, and renders its shape as
// canonical indented JSON (keys sorted by encoding/json).
func schemaJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var decoded any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(shapeOf(t, "$", decoded), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("response schema drifted from %s (run with -update if intentional):\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// samplePhases fills every phase with a non-zero value so omitempty
// fields appear in the schema.
func samplePhases() obs.PhaseSeconds {
	return obs.PhaseSeconds{
		MortonSort: 1, TreeBuild: 2, GroupWalk: 3, ForceEval: 4, Guard: 5,
		JTransfer: 6, ITransfer: 7, Pipeline: 8, Readback: 9, Checkpoint: 10,
	}
}

// sampleJobStatus is a fully-populated status: every optional field
// set, so the golden pins the complete wire surface.
func sampleJobStatus() serve.JobStatus {
	rep := obs.StepReport{
		Step: 3, WallSeconds: 0.1, THost: 0.05, TGrape: 0.02, TComm: 0.01,
		TBuild: 0.03, BytesAlloc: 64, Phases: samplePhases(),
		Interactions: 1000, Flops: 38000, Bytes: 512, Groups: 4,
		NodesVisited: 99, Recoveries: 1, Fallbacks: 1, CkptBytes: 2048, CkptWrites: 1,
		Substeps: 4, ActiveI: 250, ActiveFrac: 0.625,
	}
	return serve.JobStatus{
		ID:     "job-000001",
		Tenant: "alice",
		State:  serve.StateDone,
		Spec: serve.JobSpec{
			Tenant: "alice", Model: "plummer", N: 100, Steps: 5, Theta: 0.75,
			Ncrit: 2000, DT: 0.005, Eps: 0.02, Seed: 1, Engine: "grape5", Boards: 2,
		},
		Step: 5, Steps: 5, Progress: 1, Interactions: 5000,
		ResumedFrom: 2, DoneSeq: 1, Error: "context",
		Phases:     samplePhases(),
		LastReport: &rep,
	}
}

func TestJobStatusSchemaGolden(t *testing.T) {
	checkGolden(t, "job_status.golden.json", schemaJSON(t, sampleJobStatus()))
}

func TestMetricsSchemaGolden(t *testing.T) {
	m := serve.Metrics{
		UptimeSeconds: 12.5, QueueDepth: 3, Running: 2, BoardsLeased: 3,
		BoardsPool: 4, Paused: true, Draining: true, JobsSubmitted: 9,
		JobsCompleted: 4, JobsFailed: 1, JobsCanceled: 1, JobsRejected: 2,
		StepsServed: 123, InteractionsServed: 456789,
		Tenants: []serve.TenantMetrics{{
			Tenant: "alice", Weight: 2, Queued: 1, Running: 1,
			Submitted: 5, Completed: 2, Failed: 1, Canceled: 1, Rejected: 1,
		}},
	}
	checkGolden(t, "metrics.golden.json", schemaJSON(t, m))
}

func TestHealthStatusSchemaGolden(t *testing.T) {
	h := serve.HealthStatus{
		Status: "degraded", UptimeSeconds: 3.5, BoardsLeased: 2, BoardsPool: 4,
		Running: []serve.JobHealth{{
			Job: "job-000001", Tenant: "alice",
			Health: g5.Health{
				Shards: 2, BoardsTotal: 2, BoardsActive: 1, HostOnly: false,
				Recovery: g5.Recovery{Checks: 5, Retries: 1, CorruptResults: 1,
					ExcludedBoards: 1, FallbackBatches: 1, HostOnly: false},
				Boards: []g5.BoardHealth{{Shard: 0, Board: 0, InService: true}},
			},
		}},
	}
	checkGolden(t, "healthz.golden.json", schemaJSON(t, h))
}
