package serve_test

// FuzzJobRequest drives the wire decoder/validator with arbitrary
// bytes. The contract under fuzz: never panic, never admit an invalid
// configuration — any spec that comes back error-free must be fully
// resolved and inside the budget, ready to hand to NewSimulation.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/serve"
)

func FuzzJobRequest(f *testing.F) {
	seeds := []string{
		`{"model":"plummer","n":100,"steps":5}`,
		`{"tenant":"alice","model":"uniform","n":64,"steps":3,"engine":"grape5","boards":2}`,
		`{"model":"plummer","n":100,"steps":5,"theta":0.9,"ncrit":500,"dt":0.001,"eps":0.05,"seed":42}`,
		`{"model":"plummer","n":-1,"steps":5}`,
		`{"model":"plummer","n":1000000000,"steps":5}`,
		`{"model":"plummer","n":100,"steps":5,"theta":-1}`,
		`{"model":"plummer","n":100,"steps":5,"theta":1e999}`,
		`{"model":"plummer","n":100,"steps":5,"dt":-0.5}`,
		`{"model":"plummer","n":100,"steps":5,"boards":99}`,
		`{"model":"nope","n":100,"steps":5}`,
		`{"tenant":"../etc","model":"plummer","n":100,"steps":5}`,
		`{"model":"plummer","n":100,"steps":5}{"model":"plummer"}`,
		`{"model":"plummer","n":100,"steps":5,"extra":true}`,
		`{`, ``, `null`, `[1,2,3]`, `"plummer"`, `{"n":1e308,"steps":1e308}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	budget := serve.Budget{MaxParticles: 10_000, MaxSteps: 1_000, Boards: 4}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := serve.DecodeJobRequest(bytes.NewReader(data), budget)
		if err != nil {
			return
		}
		// Accepted: every field must be concrete and within budget.
		if spec.Tenant == "" || len(spec.Tenant) > 32 {
			t.Fatalf("admitted bad tenant %q", spec.Tenant)
		}
		if spec.Model != serve.ModelPlummer && spec.Model != serve.ModelUniform {
			t.Fatalf("admitted bad model %q", spec.Model)
		}
		if spec.N < 16 || spec.N > budget.MaxParticles {
			t.Fatalf("admitted n=%d outside budget", spec.N)
		}
		if spec.Steps < 1 || spec.Steps > budget.MaxSteps {
			t.Fatalf("admitted steps=%d outside budget", spec.Steps)
		}
		for name, v := range map[string]float64{"theta": spec.Theta, "dt": spec.DT, "eps": spec.Eps} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("admitted non-finite %s=%v", name, v)
			}
		}
		if spec.Theta > 2 {
			t.Fatalf("admitted theta=%v", spec.Theta)
		}
		if spec.Ncrit < 1 || spec.Ncrit > 1<<20 {
			t.Fatalf("admitted ncrit=%d", spec.Ncrit)
		}
		switch spec.Engine {
		case serve.EngineHost:
			if spec.Boards != 0 {
				t.Fatalf("admitted host job with boards=%d", spec.Boards)
			}
		case serve.EngineGRAPE5:
			if spec.Boards < 1 || spec.Boards > budget.Boards {
				t.Fatalf("admitted boards=%d outside pool", spec.Boards)
			}
		default:
			t.Fatalf("admitted bad engine %q", spec.Engine)
		}
		if spec.Seed == 0 {
			t.Fatal("admitted zero seed")
		}
		// The resolved spec must translate without surprises.
		cfg := spec.SimConfig()
		if cfg.DT != spec.DT || cfg.Theta != spec.Theta {
			t.Fatalf("SimConfig mismatch: %+v vs %+v", cfg, spec)
		}
	})
}
