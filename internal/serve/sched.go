package serve

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/g5"
	"repro/internal/obs"
)

// Budget is the server's admission-control envelope. Everything a job
// could exhaust is bounded here; requests beyond a bound are rejected
// at the door (400 for per-job limits, 429 for queue pressure), never
// silently truncated or dropped.
type Budget struct {
	// MaxParticles and MaxSteps bound a single job's size.
	MaxParticles int
	MaxSteps     int
	// MaxRunning is the number of jobs stepping concurrently.
	MaxRunning int
	// Boards is the board pool shared by all running grape5 jobs; a
	// job leasing k boards blocks until k are free.
	Boards int
	// MaxQueuedPerTenant and MaxQueueTotal bound the admission queues;
	// beyond them submissions get 429 + Retry-After.
	MaxQueuedPerTenant int
	MaxQueueTotal      int
	// RetryAfter is the backoff hint returned with 429 responses.
	RetryAfter time.Duration
	// CkptEvery is the periodic checkpoint cadence in steps for
	// persistent jobs (0 disables periodic checkpoints; drain still
	// checkpoints).
	CkptEvery int
	// TenantWeights maps tenant name to scheduling weight (default 1):
	// with every tenant backlogged, each replenish epoch dispatches a
	// tenant weight-many times.
	TenantWeights map[string]int
}

// withDefaults fills unset budget fields with serviceable defaults.
func (b Budget) withDefaults() Budget {
	if b.MaxParticles <= 0 {
		b.MaxParticles = 100_000
	}
	if b.MaxSteps <= 0 {
		b.MaxSteps = 10_000
	}
	if b.MaxRunning <= 0 {
		b.MaxRunning = 2
	}
	if b.Boards <= 0 {
		b.Boards = 4
	}
	if b.MaxQueuedPerTenant <= 0 {
		b.MaxQueuedPerTenant = 8
	}
	if b.MaxQueueTotal <= 0 {
		b.MaxQueueTotal = 64
	}
	if b.RetryAfter <= 0 {
		b.RetryAfter = time.Second
	}
	if b.CkptEvery <= 0 {
		b.CkptEvery = 25
	}
	return b
}

// weight returns a tenant's configured scheduling weight (default 1).
func (b Budget) weight(tenant string) int {
	if w, ok := b.TenantWeights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// Job states. queued and running are live; done, failed and canceled
// are terminal. A drained job (daemon shutting down mid-run) goes back
// to queued with its state checkpointed on disk.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one admitted simulation job. Scheduling fields (state, queue
// membership, lease) are guarded by the server mutex together with
// j.mu; telemetry written by the runner every step uses atomics and
// repMu so status endpoints never contend with the stepping loop for
// long. Lock order is always Server.mu before Job.mu.
type Job struct {
	id   string
	seq  int64
	spec JobSpec
	// dir is the job's persistence directory ("" in memory mode).
	dir string

	mu          sync.Mutex
	state       string
	errMsg      string
	doneSeq     int64 // completion order, 1-based; 0 while live
	resumedFrom int64 // checkpoint step a restart resumed from; -1 = never
	cancel      context.CancelFunc
	result      []byte

	// cancelFlag distinguishes user cancellation from a drain: both
	// cancel the runner context, only cancellation is terminal.
	cancelFlag atomic.Bool

	step         atomic.Int64
	interactions atomic.Int64

	repMu      sync.Mutex
	phases     obs.PhaseSeconds
	lastReport obs.StepReport
	hasReport  bool
	lastHealth g5.Health

	hub  *hub
	done chan struct{}
}

// ID returns the job's server-assigned identity.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// tenantState is the scheduler's per-tenant bookkeeping: a FIFO queue,
// the WRR credit balance, and cumulative accounting for /metrics.
type tenantState struct {
	name    string
	weight  int
	credit  int
	queue   []*Job
	running int

	submitted int64
	completed int64
	failed    int64
	canceled  int64
	rejected  int64
}

// tenantLocked returns (creating if needed) the tenant's scheduler
// state. New tenants enter the rotation in sorted-name position with a
// full credit balance, so admission order alone determines scheduling —
// no map iteration, no wall clock.
func (s *Server) tenantLocked(name string) *tenantState {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	t := &tenantState{name: name, weight: s.budget.weight(name)}
	t.credit = t.weight
	s.tenants[name] = t
	i := sort.SearchStrings(s.order, name)
	s.order = append(s.order, "")
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = name
	if s.cursor > i {
		// Keep the cursor pointing at the same tenant it did before the
		// insertion shifted the slice.
		s.cursor++
	}
	return t
}

// feasibleLocked reports whether a job's resource lease fits the pool
// right now.
func (s *Server) feasibleLocked(j *Job) bool {
	return j.spec.Boards <= s.budget.Boards-s.boardsLeased
}

// pickLocked selects the next job under deterministic weighted round
// robin. The cursor scans tenants in sorted-name order; a tenant with
// queued feasible work and credit left is charged one credit and its
// FIFO head dispatched. A full scan that found credit-starved work (but
// nothing dispatchable) replenishes every tenant to its weight and
// scans once more — so with every tenant backlogged, each replenish
// epoch dispatches exactly weight-many jobs per tenant. Tenants whose
// head job cannot fit the board pool are skipped without losing credit.
func (s *Server) pickLocked() (*Job, bool) {
	for pass := 0; pass < 2; pass++ {
		n := len(s.order)
		starved := false
		for i := 0; i < n; i++ {
			t := s.tenants[s.order[(s.cursor+i)%n]]
			if len(t.queue) == 0 {
				continue
			}
			j := t.queue[0]
			if !s.feasibleLocked(j) {
				continue
			}
			if t.credit <= 0 {
				starved = true
				continue
			}
			t.credit--
			t.queue = t.queue[1:]
			s.queueTotal--
			s.cursor = (s.cursor + i + 1) % n
			return j, true
		}
		if !starved {
			return nil, false
		}
		for _, name := range s.order {
			s.tenants[name].credit = s.tenants[name].weight
		}
	}
	return nil, false
}

// dispatchLocked starts picked jobs while run slots and board leases
// allow. Called after every event that could unblock work: submission,
// completion, unpause, restart recovery.
func (s *Server) dispatchLocked() {
	for !s.paused && !s.draining && s.running < s.budget.MaxRunning {
		j, ok := s.pickLocked()
		if !ok {
			return
		}
		s.startLocked(j)
	}
}

// startLocked leases the job's resources and launches its runner.
func (s *Server) startLocked(j *Job) {
	t := s.tenantLocked(j.spec.Tenant)
	s.running++
	t.running++
	s.boardsLeased += j.spec.Boards
	ctx, cancel := context.WithCancel(s.ctx)
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
	s.persistMetaLocked(j)
	s.wg.Add(1)
	go s.runJob(ctx, j)
}

// finishJob releases the job's lease and records its terminal state —
// or, for a drained job, re-queues it in memory while the durable state
// stays resumable on disk.
func (s *Server) finishJob(j *Job, state, errMsg string) {
	s.mu.Lock()
	t := s.tenantLocked(j.spec.Tenant)
	s.running--
	t.running--
	s.boardsLeased -= j.spec.Boards
	terminal := true
	j.mu.Lock()
	switch state {
	case StateDone:
		s.completed++
		t.completed++
	case StateFailed:
		s.failed++
		t.failed++
	case StateCanceled:
		s.canceled++
		t.canceled++
	default: // drained: back to queued, still resumable
		terminal = false
	}
	j.state = state
	j.errMsg = errMsg
	j.cancel = nil
	if terminal {
		s.doneSeq++
		j.doneSeq = s.doneSeq
	}
	j.mu.Unlock()
	s.persistMetaLocked(j)
	s.mu.Unlock()
	if terminal {
		j.hub.close()
		close(j.done)
	}
	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
}
