package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/g5"
	"repro/internal/obs"
)

// Options configures a Server.
type Options struct {
	// Budget is the admission-control envelope (zero fields default).
	Budget Budget
	// DataDir is the persistence root; "" runs in memory (no job
	// survives the process — test and throwaway use only).
	DataDir string
	// StartPaused admits jobs without dispatching them until SetPaused
	// (false); tests use it to make dispatch order independent of
	// submission timing.
	StartPaused bool
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Server is the multi-tenant job server. One mutex guards all
// scheduling state — admission, queues, leases, the tenant rotation;
// per-step telemetry goes through job-local atomics so the stepping
// runners touch it only at job boundaries.
type Server struct {
	opts   Options
	budget Budget
	start  time.Time

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
	mux  *http.ServeMux

	mu           sync.Mutex
	tenants      map[string]*tenantState
	order        []string
	cursor       int
	jobs         map[string]*Job
	jobList      []*Job
	seq          int64
	doneSeq      int64
	running      int
	boardsLeased int
	queueTotal   int
	paused       bool
	draining     bool

	submitted int64
	completed int64
	failed    int64
	canceled  int64
	rejected  int64

	stepsServed        atomic.Int64
	interactionsServed atomic.Int64
}

// NewServer builds a server, recovering persisted jobs from
// Options.DataDir (jobs recorded queued or running are re-queued and
// resume from their checkpoints). Dispatch begins immediately unless
// StartPaused.
func NewServer(o Options) (*Server, error) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    o,
		budget:  o.Budget.withDefaults(),
		start:   time.Now(),
		ctx:     ctx,
		stop:    cancel,
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*Job),
		seq:     1,
		paused:  o.StartPaused,
	}
	if o.DataDir != "" {
		if err := os.MkdirAll(filepath.Join(o.DataDir, "jobs"), 0o755); err != nil {
			cancel()
			return nil, err
		}
		s.mu.Lock()
		err := s.loadJobs()
		if err == nil {
			s.dispatchLocked()
		}
		s.mu.Unlock()
		if err != nil {
			cancel()
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// logf logs through Options.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// SetPaused toggles dispatch. Unpausing dispatches immediately.
func (s *Server) SetPaused(paused bool) {
	s.mu.Lock()
	s.paused = paused
	if !paused {
		s.dispatchLocked()
	}
	s.mu.Unlock()
}

// Shutdown drains the server: new submissions get 503, running jobs
// checkpoint their exact state and stop (remaining resumable on
// restart), and once every runner has exited the event streams close.
// The ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.jobList {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.stop()
	return err
}

// Close is Shutdown with an unbounded wait — runners notice the drain
// at their next step boundary, so it returns quickly for any job the
// budget admits.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// JobStatus is the wire representation of one job.
type JobStatus struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	State  string  `json:"state"`
	Spec   JobSpec `json:"spec"`
	Step   int64   `json:"step"`
	Steps  int     `json:"target_steps"`
	// Progress is completed steps over target, in [0, 1].
	Progress     float64 `json:"progress"`
	Interactions int64   `json:"interactions"`
	// ResumedFrom is the checkpoint step a daemon restart resumed this
	// job from (-1: never resumed).
	ResumedFrom int64 `json:"resumed_from"`
	// DoneSeq is the 1-based completion order (0 while live) — the
	// fairness tests' ground truth.
	DoneSeq int64  `json:"done_seq"`
	Error   string `json:"error"`
	// Phases is the per-phase time accumulated over all completed steps.
	Phases obs.PhaseSeconds `json:"phases"`
	// LastReport is the most recent completed step's telemetry.
	LastReport *obs.StepReport `json:"last_report,omitempty"`
}

// status snapshots a job for the wire.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:          j.id,
		Tenant:      j.spec.Tenant,
		State:       j.state,
		Spec:        j.spec,
		Steps:       j.spec.Steps,
		ResumedFrom: j.resumedFrom,
		DoneSeq:     j.doneSeq,
		Error:       j.errMsg,
	}
	j.mu.Unlock()
	st.Step = j.step.Load()
	st.Interactions = j.interactions.Load()
	if st.Steps > 0 {
		//lint:ignore wireschema the denominator is guarded by the enclosing Steps > 0 branch (and Steps is validated positive at submit), which the structural finiteness grammar cannot see
		st.Progress = float64(st.Step) / float64(st.Steps)
	}
	j.repMu.Lock()
	st.Phases = j.phases
	if j.hasReport {
		rep := j.lastReport
		st.LastReport = &rep
	}
	j.repMu.Unlock()
	return st
}

// writeJSON writes v as a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a job request body; admission control starts
// at the socket.
const maxRequestBytes = 1 << 20

// handleSubmit admits one job: decode and validate against the budget
// (400), check queue bounds (429 + Retry-After — explicit backpressure,
// never a silent drop or an unbounded queue), persist, enqueue,
// dispatch.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes), s.budget)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	j, code, err := s.submit(spec)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.budget.RetryAfter+time.Second-1)/time.Second)))
		}
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// submit runs admission under the scheduler lock. The returned code is
// meaningful only on error: 429 for queue pressure, 503 while draining.
func (s *Server) submit(spec JobSpec) (*Job, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}
	t := s.tenantLocked(spec.Tenant)
	if len(t.queue) >= s.budget.MaxQueuedPerTenant {
		t.rejected++
		s.rejected++
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("tenant %s queue full (%d queued)", spec.Tenant, len(t.queue))
	}
	if s.queueTotal >= s.budget.MaxQueueTotal {
		t.rejected++
		s.rejected++
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("server queue full (%d queued)", s.queueTotal)
	}
	j := &Job{
		id:          fmt.Sprintf("job-%06d", s.seq),
		seq:         s.seq,
		spec:        spec,
		state:       StateQueued,
		resumedFrom: -1,
		hub:         newHub(),
		done:        make(chan struct{}),
	}
	s.seq++
	if s.opts.DataDir != "" {
		j.dir = filepath.Join(s.opts.DataDir, "jobs", j.id)
		if err := os.MkdirAll(j.dir, 0o755); err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	s.persistMetaLocked(j)
	s.jobs[j.id] = j
	s.jobList = append(s.jobList, j)
	t.queue = append(t.queue, j)
	s.queueTotal++
	t.submitted++
	s.submitted++
	s.dispatchLocked()
	return j, http.StatusAccepted, nil
}

// jobFor resolves the {id} path value.
func (s *Server) jobFor(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	return j, ok
}

// handleList returns every known job in admission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, len(s.jobList))
	copy(jobs, s.jobList)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus returns one job.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCancel cancels a job: a queued job is removed from its tenant's
// queue and finalized on the spot; a running job's context is canceled
// and its runner finalizes it at the next step boundary. Idempotent —
// canceling a terminal job reports its (unchanged) status.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	s.mu.Lock()
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		t := s.tenantLocked(j.spec.Tenant)
		for i, q := range t.queue {
			if q == j {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				s.queueTotal--
				break
			}
		}
		j.state = StateCanceled
		s.canceled++
		t.canceled++
		s.doneSeq++
		j.doneSeq = s.doneSeq
		j.mu.Unlock()
		s.persistMetaLocked(j)
		s.mu.Unlock()
		j.hub.close()
		close(j.done)
	case StateRunning:
		j.cancelFlag.Store(true)
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
		s.mu.Unlock()
	default:
		j.mu.Unlock()
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleResult serves a completed job's result checkpoint — the bytes
// whose equality across runs is the service's determinism contract.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	j.mu.Lock()
	state, result, dir := j.state, j.result, j.dir
	j.mu.Unlock()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job is " + state + ", result exists only for done jobs"})
		return
	}
	if result == nil && dir != "" {
		data, err := os.ReadFile(filepath.Join(dir, "result.g5ck"))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		result = data
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(result)
}

// handleEvents streams a job's per-step telemetry as SSE. The stream
// ends with a final status frame when the job reaches a terminal state;
// subscribing to a finished job yields the final frame immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "streaming unsupported"})
		return
	}
	ch := j.hub.subscribe()
	defer j.hub.unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeFrame := func(payload []byte) bool {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", payload); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	statusFrame := func() []byte {
		st := j.status()
		b, err := json.Marshal(Event{Job: j.id, State: st.State, Step: st.Step, Report: st.LastReport})
		if err != nil {
			return []byte(`{}`)
		}
		return b
	}
	if !writeFrame(statusFrame()) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		case frame, open := <-ch:
			if !open {
				writeFrame(statusFrame())
				return
			}
			if !writeFrame(frame) {
				return
			}
		}
	}
}

// JobHealth pairs a running job with its hardware health snapshot.
type JobHealth struct {
	Job    string    `json:"job"`
	Tenant string    `json:"tenant"`
	Health g5.Health `json:"health"`
}

// HealthStatus is the /healthz body: the service's own state plus the
// per-board guard health of every running job's hardware.
type HealthStatus struct {
	// Status is "ok", "degraded" (some running job's boards are out of
	// service or fully host-fallback) or "draining".
	Status        string      `json:"status"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	BoardsLeased  int         `json:"boards_leased"`
	BoardsPool    int         `json:"boards_pool"`
	Running       []JobHealth `json:"running"`
}

// handleHealthz reports liveness and per-board guard health.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := HealthStatus{
		Status:       "ok",
		BoardsLeased: s.boardsLeased,
		BoardsPool:   s.budget.Boards,
		Running:      []JobHealth{},
	}
	draining := s.draining
	var runningJobs []*Job
	for _, j := range s.jobList {
		j.mu.Lock()
		if j.state == StateRunning {
			runningJobs = append(runningJobs, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	h.UptimeSeconds = time.Since(s.start).Seconds()
	for _, j := range runningJobs {
		j.repMu.Lock()
		jh := JobHealth{Job: j.id, Tenant: j.spec.Tenant, Health: j.lastHealth}
		j.repMu.Unlock()
		if jh.Health.Boards == nil {
			jh.Health.Boards = []g5.BoardHealth{}
		}
		if jh.Health.Degraded() {
			h.Status = "degraded"
		}
		h.Running = append(h.Running, jh)
	}
	if draining {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// TenantMetrics is one tenant's row in /metrics.
type TenantMetrics struct {
	Tenant    string `json:"tenant"`
	Weight    int    `json:"weight"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	Canceled  int64  `json:"canceled"`
	Rejected  int64  `json:"rejected"`
}

// Metrics is the /metrics body.
type Metrics struct {
	UptimeSeconds      float64         `json:"uptime_seconds"`
	QueueDepth         int             `json:"queue_depth"`
	Running            int             `json:"running"`
	BoardsLeased       int             `json:"boards_leased"`
	BoardsPool         int             `json:"boards_pool"`
	Paused             bool            `json:"paused"`
	Draining           bool            `json:"draining"`
	JobsSubmitted      int64           `json:"jobs_submitted"`
	JobsCompleted      int64           `json:"jobs_completed"`
	JobsFailed         int64           `json:"jobs_failed"`
	JobsCanceled       int64           `json:"jobs_canceled"`
	JobsRejected       int64           `json:"jobs_rejected"`
	StepsServed        int64           `json:"steps_served"`
	InteractionsServed int64           `json:"interactions_served"`
	Tenants            []TenantMetrics `json:"tenants"`
}

// handleMetrics reports queue depth, lease usage and per-tenant
// accounting, tenants sorted by name.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := Metrics{
		QueueDepth:    s.queueTotal,
		Running:       s.running,
		BoardsLeased:  s.boardsLeased,
		BoardsPool:    s.budget.Boards,
		Paused:        s.paused,
		Draining:      s.draining,
		JobsSubmitted: s.submitted,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsCanceled:  s.canceled,
		JobsRejected:  s.rejected,
		Tenants:       []TenantMetrics{},
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tenants[name]
		m.Tenants = append(m.Tenants, TenantMetrics{
			Tenant:    t.name,
			Weight:    t.weight,
			Queued:    len(t.queue),
			Running:   t.running,
			Submitted: t.submitted,
			Completed: t.completed,
			Failed:    t.failed,
			Canceled:  t.canceled,
			Rejected:  t.rejected,
		})
	}
	s.mu.Unlock()
	m.UptimeSeconds = time.Since(s.start).Seconds()
	m.StepsServed = s.stepsServed.Load()
	m.InteractionsServed = s.interactionsServed.Load()
	writeJSON(w, http.StatusOK, m)
}
