package serve_test

// Scheduler + SSE + cancellation soak under goroutine churn. Run with
// -race (make serve-e2e does) this is the data-race net over the whole
// concurrency surface; the before/after goroutine budget catches leaked
// runners, stuck SSE handlers and forgotten subscribers.

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// watchEvents subscribes to a job's SSE stream and reads it to the end
// (or until ctx cancels — the early-disconnect case the hub must
// tolerate without leaking its subscriber).
func watchEvents(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
	}
	return nil
}

func TestSoakConcurrencyAndGoroutineBudget(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		e := newTestServer(t, serve.Options{
			Budget: serve.Budget{
				MaxRunning:         2,
				MaxQueuedPerTenant: 16,
				MaxQueueTotal:      64,
			},
		})
		const (
			nTenants  = 6
			perTenant = 4
		)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var ids []string
		for tn := 0; tn < nTenants; tn++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				for k := 0; k < perTenant; k++ {
					st := e.mustSubmit(t, jobBody(fmt.Sprintf("t%d", tn), 48, 4))
					mu.Lock()
					ids = append(ids, st.ID)
					mu.Unlock()

					// Two SSE watchers per job: one reads to the end, one
					// disconnects early.
					wg.Add(2)
					go func(id string) {
						defer wg.Done()
						if err := watchEvents(context.Background(), e.url("/jobs/"+id+"/events")); err != nil {
							t.Errorf("watcher %s: %v", id, err)
						}
					}(st.ID)
					go func(id string) {
						defer wg.Done()
						ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
						defer cancel()
						// Early disconnect is the point; a context error is fine.
						_ = watchEvents(ctx, e.url("/jobs/"+id+"/events"))
					}(st.ID)
				}
			}(tn)
		}
		wg.Wait()

		// Cancel every third job (some queued, some running, some done —
		// cancellation must be clean in all three).
		for i, id := range ids {
			if i%3 == 0 {
				resp, err := http.Post(e.url("/jobs/"+id+"/cancel"), "", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
		}
		for _, id := range ids {
			st := e.waitTerminal(t, id, 120*time.Second)
			if st.State == serve.StateFailed {
				t.Errorf("job %s failed: %s", id, st.Error)
			}
		}
		// Cleanup (server close, SSE teardown) runs via t.Cleanup when
		// this closure's testServer goes out of scope... but Cleanup runs
		// at test end, after the budget check — so close explicitly here.
		if err := e.srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		e.ts.Close()
	}()

	// Everything the soak spawned must unwind. Poll: handler goroutines
	// finish asynchronously after Close returns.
	const slack = 6
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after (+%d slack)\n%s",
				before, after, slack, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
