package grape5

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestGuardedGRAPEEnergyRegression is the energy-conservation
// regression gate for the full guarded offload pipeline: Plummer
// sphere, modified treecode, emulated GRAPE-5 behind the fault-tolerant
// guard, leapfrog. The seed and step count are golden; the tolerance
// holds ~20x headroom over the observed drift (~1e-4 at this
// resolution) without masking an integrator or force-pipeline
// regression — a sign error or dropped group blows through it at once.
func TestGuardedGRAPEEnergyRegression(t *testing.T) {
	const (
		seed  = 20260805
		steps = 64
		tol   = 0.002
	)
	s := Plummer(1024, 1, 1, 1, seed)
	sim, err := NewSimulation(s, Config{
		Theta: 0.6, Ncrit: 128, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, Guard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy().Total()
	if e0 >= 0 {
		t.Fatalf("unbound initial state: E = %v", e0)
	}
	if err := sim.Run(steps); err != nil {
		t.Fatal(err)
	}
	e1 := sim.Energy().Total()
	rel := math.Abs(e1-e0) / math.Abs(e0)
	if rel > tol {
		t.Errorf("|dE/E| = %v over %d steps, tolerance %v", rel, steps, tol)
	}
	// The guard must have been exercised (probe checks on every batch)
	// without eating into correctness: a fault-free run recovers nothing.
	rec := sim.Recovery()
	if rec.Checks == 0 {
		t.Error("guard ran no acceptance checks")
	}
	if sim.LastReport.Fallbacks != 0 {
		t.Errorf("fault-free run fell back to host %d times", sim.LastReport.Fallbacks)
	}
}

// TestStepTelemetry checks that every Step emits a complete
// time-balance report: host phases measured, GRAPE pipeline and
// transfer phases in simulated seconds, counters matching the
// treecode's own statistics.
func TestStepTelemetry(t *testing.T) {
	s := Plummer(512, 1, 1, 1, 21)
	sim, err := NewSimulation(s, Config{
		Theta: 0.7, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, Guard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	prime := sim.LastReport
	if prime.Step != 0 {
		t.Errorf("prime telemetry step = %d", prime.Step)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	r := sim.LastReport
	if r.Step != 1 {
		t.Errorf("step telemetry step = %d", r.Step)
	}
	if r.WallSeconds <= 0 {
		t.Error("no wall time")
	}
	if r.THost <= 0 || r.Phases.TreeBuild <= 0 || r.Phases.GroupWalk <= 0 {
		t.Errorf("host phases missing: %+v", r.Phases)
	}
	if r.Phases.MortonSort <= 0 {
		t.Errorf("morton sort span missing: %+v", r.Phases)
	}
	if r.TGrape <= 0 || r.TComm <= 0 {
		t.Errorf("simulated hardware phases missing: grape=%v comm=%v", r.TGrape, r.TComm)
	}
	if r.Phases.Guard <= 0 {
		t.Error("guarded run recorded no guard overhead")
	}
	if r.Interactions != sim.LastStats.Interactions {
		t.Errorf("telemetry interactions %d != stats %d", r.Interactions, sim.LastStats.Interactions)
	}
	if r.Groups != int64(sim.LastStats.Groups) {
		t.Errorf("telemetry groups %d != stats %d", r.Groups, sim.LastStats.Groups)
	}
	if r.Flops <= 0 || r.Bytes <= 0 {
		t.Errorf("hardware counters missing: flops=%g bytes=%d", r.Flops, r.Bytes)
	}
	// A leapfrog step runs exactly one force evaluation, so the
	// telemetry must not double-count against the previous step.
	if r.Interactions >= 2*prime.Interactions {
		t.Errorf("telemetry accumulating across steps: %d after %d", r.Interactions, prime.Interactions)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSimulationsTelemetry runs independent simulations in
// parallel under -race: each owns its observer, and the parallel group
// walk inside each must fold spans into it without races.
func TestConcurrentSimulationsTelemetry(t *testing.T) {
	var wg sync.WaitGroup
	reports := make([]obs.StepReport, 4)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := Plummer(256, 1, 1, 1, uint64(30+i))
			sim, err := NewSimulation(s, Config{
				Theta: 0.7, Ncrit: 32, G: 1, Eps: 0.05, DT: 0.005,
				Engine: EngineGRAPE5, Guard: true, Workers: 4,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := sim.Run(3); err != nil {
				t.Error(err)
				return
			}
			reports[i] = sim.LastReport
		}(i)
	}
	wg.Wait()
	for i, r := range reports {
		if r.Interactions == 0 || r.THost <= 0 {
			t.Errorf("sim %d: empty telemetry: %+v", i, r)
		}
	}
}
