# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO  ?= go
BIN := bin

.PHONY: all build test race lint bench-smoke bench-alloc clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

$(BIN)/grapelint: $(wildcard cmd/grapelint/*.go) $(wildcard internal/lint/*.go)
	$(GO) build -o $@ ./cmd/grapelint

# lint runs the domain-invariant analyzer suite (DESIGN.md §10) both
# standalone and through the go vet driver, so the vettool protocol
# stays exercised.
lint: $(BIN)/grapelint
	$(BIN)/grapelint ./...
	$(GO) vet -vettool=$(abspath $(BIN)/grapelint) ./...

# bench-smoke mirrors the CI bench job: a small sweep plus schema
# validation of the fresh and committed bench records.
bench-smoke:
	$(GO) run ./cmd/bench -smoke -boards 1,2 -out /tmp/bench-smoke.json
	$(GO) run ./cmd/bench -validate /tmp/bench-smoke.json
	$(GO) run ./cmd/bench -validate BENCH_treecode.json

# bench-alloc gates the arena step pipeline (DESIGN.md §11): the
# steady-state allocation budget and the parallel-build conformance
# property, both at GOMAXPROCS=1 and GOMAXPROCS=4 so scheduler width
# cannot mask a regression.
bench-alloc:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'TestStepAllocs|TestBuildSteadyStateAllocs' . ./internal/octree
	GOMAXPROCS=4 $(GO) test -count=1 -run 'TestStepAllocs|TestBuildSteadyStateAllocs' . ./internal/octree
	GOMAXPROCS=1 $(GO) test -count=1 -run 'TestBuildParallelMatchesSerial|TestBuilderReuseMatchesFresh' ./internal/octree
	GOMAXPROCS=4 $(GO) test -count=1 -run 'TestBuildParallelMatchesSerial|TestBuilderReuseMatchesFresh' ./internal/octree

clean:
	rm -rf $(BIN)
