# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO  ?= go
BIN := bin

.PHONY: all build test race lint lint-escape lint-escape-baseline bench-smoke bench-alloc bench-host ckpt-e2e serve-e2e clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

$(BIN)/grapelint: $(wildcard cmd/grapelint/*.go) $(wildcard internal/lint/*.go)
	$(GO) build -o $@ ./cmd/grapelint

# lint runs the domain-invariant analyzer suite (DESIGN.md §10, §15)
# both standalone (with stale-suppression detection) and through the go
# vet driver, so the vettool protocol stays exercised.
lint: $(BIN)/grapelint
	$(BIN)/grapelint -unused-ignores ./...
	$(GO) vet -vettool=$(abspath $(BIN)/grapelint) ./...

# lint-escape compares the compiler's escape-analysis inventory
# (-gcflags=-m) for the hot packages against the committed baseline, so
# a change that silently moves an arena allocation to the heap fails
# before the allocation gates do. Rebuild the baseline with
# lint-escape-baseline after an intentional change.
lint-escape: $(BIN)/grapelint
	$(BIN)/grapelint -escapes

lint-escape-baseline: $(BIN)/grapelint
	$(BIN)/grapelint -escapes -write

# bench-smoke mirrors the CI bench job: a small sweep plus schema
# validation of the fresh and committed bench records.
bench-smoke:
	$(GO) run ./cmd/bench -smoke -boards 1,2 -out /tmp/bench-smoke.json
	$(GO) run ./cmd/bench -validate /tmp/bench-smoke.json
	$(GO) run ./cmd/bench -validate BENCH_treecode.json

# bench-alloc gates the arena step pipeline (DESIGN.md §11): the
# steady-state allocation budget and the parallel-build conformance
# property, both at GOMAXPROCS=1 and GOMAXPROCS=4 so scheduler width
# cannot mask a regression.
bench-alloc:
	GOMAXPROCS=1 $(GO) test -count=1 -run 'TestStepAllocs|TestBuildSteadyStateAllocs' . ./internal/octree
	GOMAXPROCS=4 $(GO) test -count=1 -run 'TestStepAllocs|TestBuildSteadyStateAllocs' . ./internal/octree
	GOMAXPROCS=1 $(GO) test -count=1 -run 'TestBuildParallelMatchesSerial|TestBuilderReuseMatchesFresh' ./internal/octree
	GOMAXPROCS=4 $(GO) test -count=1 -run 'TestBuildParallelMatchesSerial|TestBuilderReuseMatchesFresh' ./internal/octree

# bench-host gates the batched SoA host kernels (DESIGN.md §13): the
# scalar-vs-soa sub-benchmarks are sampled 10x and compared with
# Welch's t-test by cmd/benchdiff — fail on a statistically significant
# soa regression, and require the batched MAC to hold its >=1.3x win.
# benchdiff is built BEFORE the benchmark runs and the samples staged
# through a file: piping into `go run` would compile the tool
# concurrently with the benchmark and perturb the early samples on
# small machines.
bench-host: $(BIN)/benchdiff
	$(GO) test -run '^$$' -bench 'MACBatch|HostP2P|GuardCheck' -count=10 ./internal/hostk > $(BIN)/bench-host.txt
	$(BIN)/benchdiff -require MACBatch -factor 1.3 < $(BIN)/bench-host.txt

$(BIN)/benchdiff: $(wildcard cmd/benchdiff/*.go)
	$(GO) build -o $@ ./cmd/benchdiff

# ckpt-e2e gates the crash-safe checkpoint/restart layer (DESIGN.md
# §12): kill/resume bitwise-identity, torn-checkpoint fallback, graceful
# SIGINT and the supervised crash loop — through the real binaries,
# under the race detector — plus the checkpoint reader's corruption
# guarantees at the unit level.
ckpt-e2e:
	$(GO) test -count=1 -race -run 'TestE2E' ./cmd/grape5sim ./cmd/simrun
	$(GO) test -count=1 -run 'TestEveryBitFlipDetected|TestEveryTruncationDetected|TestLatestValid' ./internal/ckpt

# serve-e2e gates the multi-tenant job server (DESIGN.md §14): fair
# completion order, explicit 429 backpressure, bitwise result identity
# vs standalone runs, the SSE/cancellation soak with its goroutine-leak
# budget — all under the race detector — plus the daemon-level
# SIGKILL/restart resume through the real simd binary, and the wire
# schema and validator tests.
serve-e2e:
	$(GO) test -count=1 -race -run 'TestE2E|TestSoak' ./internal/serve ./cmd/simd
	$(GO) test -count=1 -run 'TestDecodeJobRequest|SchemaGolden' ./internal/serve

clean:
	rm -rf $(BIN)
