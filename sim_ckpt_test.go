package grape5

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ckpt"
)

// ckptRoundTrip pushes the simulation's state through the real on-disk
// format (encode + fully-validating decode), so these tests cover the
// serialisation path, not just in-memory copying.
func ckptRoundTrip(t *testing.T, sim *Simulation) *ckpt.Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := ckpt.Write(&buf, &ckpt.Checkpoint{State: sim.CheckpointState(), Sys: sim.Sys, Block: sim.blockState()}); err != nil {
		t.Fatal(err)
	}
	c, err := ckpt.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// requireBitwiseEqual compares two systems field-by-field with exact
// float equality — the checkpoint/resume contract is bitwise, not
// approximately-equal.
func requireBitwiseEqual(t *testing.T, want, got *System) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("N = %d, want %d", got.N(), want.N())
	}
	for i := range want.Pos {
		if want.Pos[i] != got.Pos[i] || want.Vel[i] != got.Vel[i] ||
			want.Acc[i] != got.Acc[i] || want.Mass[i] != got.Mass[i] ||
			want.Pot[i] != got.Pot[i] || want.ID[i] != got.ID[i] {
			t.Fatalf("particle %d diverged after resume", i)
		}
	}
}

// testBitwiseResume runs the uninterrupted reference, then an identical
// run cut at step `cut`, checkpointed through the wire format, resumed
// with resumeCfg, and advanced to the same total step count. Every
// particle field, the simulation clock and the interaction totals must
// match the reference exactly.
func testBitwiseResume(t *testing.T, cfg, resumeCfg Config) {
	t.Helper()
	const total, cut = 8, 3
	mk := func() *Simulation {
		s := Plummer(256, 1, 1, 1, 11)
		sim, err := NewSimulation(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}

	ref := mk()
	defer ref.Close()
	if err := ref.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(total); err != nil {
		t.Fatal(err)
	}

	a := mk()
	defer a.Close()
	a.SetAux(RunAux{Scale: 0.04, T0: 0.1, Age0: 13.2, Seed: 11})
	if err := a.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(cut); err != nil {
		t.Fatal(err)
	}
	c := ckptRoundTrip(t, a)

	b, err := ResumeSimulation(c, resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !b.Primed() {
		t.Fatal("resumed simulation is not primed — it would re-run the priming force call")
	}
	if b.Steps() != cut {
		t.Fatalf("resumed at step %d, want %d", b.Steps(), cut)
	}
	if b.Aux() != a.Aux() {
		t.Errorf("aux anchors not restored: %+v", b.Aux())
	}
	if err := b.Run(total - cut); err != nil {
		t.Fatal(err)
	}

	requireBitwiseEqual(t, ref.Sys, b.Sys)
	if b.Time() != ref.Time() {
		t.Errorf("time = %v, want bitwise %v", b.Time(), ref.Time())
	}
	if b.TotalInteractions != ref.TotalInteractions {
		t.Errorf("total interactions = %d, want %d", b.TotalInteractions, ref.TotalInteractions)
	}
}

func TestResumeBitwiseHost(t *testing.T) {
	cfg := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005, Engine: EngineHost}
	// Resume with the zero config: every fingerprint field inherits.
	testBitwiseResume(t, cfg, Config{})
}

func TestResumeBitwiseGRAPEGuarded(t *testing.T) {
	cfg := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, Guard: true}
	// Resume with the full original config: every merge hits the
	// values-equal path; Guard rides along (not fingerprinted).
	testBitwiseResume(t, cfg, cfg)
}

func TestResumeBitwiseCluster(t *testing.T) {
	cfg := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, Guard: true, Shards: 2}
	testBitwiseResume(t, cfg, cfg)
}

func TestResumeConfigConflictsAreLoud(t *testing.T) {
	st := ckpt.State{Theta: 0.7, Eps: 0.05, DT: 0.005, Engine: 0}
	if _, err := ResumeConfig(st, Config{Theta: 0.6}); err == nil || !strings.Contains(err.Error(), "theta") {
		t.Errorf("theta conflict not loud: %v", err)
	}
	// EngineHost in the checkpoint is a known value, not "unset": asking
	// for GRAPE must not silently change the physics.
	if _, err := ResumeConfig(st, Config{Engine: EngineGRAPE5}); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Errorf("engine conflict not loud: %v", err)
	}
	// Legacy snapshot: no stored DT and none given — must demand one.
	if _, err := ResumeConfig(ckpt.State{Engine: -1}, Config{}); err == nil || !strings.Contains(err.Error(), "timestep") {
		t.Errorf("missing timestep not loud: %v", err)
	}
	// Shards is bitwise-neutral: explicit override is allowed, unset
	// inherits.
	got, err := ResumeConfig(ckpt.State{DT: 0.005, Shards: 2, Engine: -1}, Config{Shards: 4})
	if err != nil || got.Shards != 4 {
		t.Errorf("shards override: cfg=%+v err=%v", got, err)
	}
	got, err = ResumeConfig(ckpt.State{DT: 0.005, Shards: 2, Engine: -1}, Config{})
	if err != nil || got.Shards != 2 {
		t.Errorf("shards inherit: cfg=%+v err=%v", got, err)
	}
}

// TestResumeCounterContinuity: whole-run counters must continue from the
// checkpointed totals, not restart at zero — the regression the paper's
// cumulative Mflops accounting would hit otherwise.
func TestResumeCounterContinuity(t *testing.T) {
	cfg := Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
		Engine: EngineGRAPE5, Guard: true}
	s := Plummer(256, 1, 1, 1, 5)
	a, err := NewSimulation(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Run(3); err != nil {
		t.Fatal(err)
	}
	rec0, hw0, ti0 := a.Recovery(), a.HardwareCounters(), a.TotalInteractions
	if rec0.Checks == 0 || hw0.Runs == 0 || ti0 == 0 {
		t.Fatalf("guarded run recorded no activity: rec=%+v hw=%+v", rec0, hw0)
	}

	b, err := ResumeSimulation(ckptRoundTrip(t, a), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Immediately after resume the live counters are zero, so the merged
	// totals must equal the checkpointed totals exactly.
	if got := b.Recovery(); got != rec0 {
		t.Errorf("recovery after resume = %+v, want %+v", got, rec0)
	}
	if got := b.HardwareCounters(); got != hw0 {
		t.Errorf("hardware counters after resume = %+v, want %+v", got, hw0)
	}
	if b.TotalInteractions != ti0 {
		t.Errorf("total interactions after resume = %d, want %d", b.TotalInteractions, ti0)
	}
	// And they keep counting up from there.
	if err := b.Run(1); err != nil {
		t.Fatal(err)
	}
	if got := b.Recovery(); got.Checks <= rec0.Checks {
		t.Errorf("recovery checks did not advance past base: %d", got.Checks)
	}
	if got := b.HardwareCounters(); got.Runs <= hw0.Runs {
		t.Errorf("hardware runs did not advance past base: %d", got.Runs)
	}
}

// TestSimulationCheckpointStore drives the Store-backed Checkpoint
// method: durable save, telemetry on the step report, and recovery via
// LatestValid.
func TestSimulationCheckpointStore(t *testing.T) {
	s := Plummer(128, 1, 1, 1, 3)
	sim, err := NewSimulation(s, Config{Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	store, err := ckpt.OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sim.Checkpoint(store)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 2 || info.Bytes == 0 {
		t.Errorf("save info = %+v", info)
	}
	if sim.LastReport.CkptWrites != 1 || sim.LastReport.CkptBytes != info.Bytes {
		t.Errorf("checkpoint telemetry not folded into LastReport: %+v", sim.LastReport)
	}
	if sim.LastReport.Phases.Checkpoint <= 0 {
		t.Errorf("checkpoint phase seconds = %v", sim.LastReport.Phases.Checkpoint)
	}
	c, gen, err := store.LatestValid()
	if err != nil {
		t.Fatal(err)
	}
	if gen.Step != 2 || c.State.Step != 2 || !c.State.Primed {
		t.Errorf("latest valid = gen %+v state step %d primed %v", gen, c.State.Step, c.State.Primed)
	}
	requireBitwiseEqual(t, sim.Sys, c.Sys)
}
