package grape5

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/g5"
)

// presoaGoldenPath holds per-step trajectory hashes recorded at the
// revision immediately before the SoA host-kernel rewrite (PR 7).  The
// SoA kernels promise bitwise-identical results to the retired scalar
// loops, so these hashes must never change: a mismatch means the
// batched MAC walk or the P2P tile kernel altered a floating-point
// operation or the j-list emission order.
//
// Regenerate (only when intentionally changing the force arithmetic,
// which requires a DESIGN.md §13 amendment):
//
//	REGEN_PRESOA=1 go test -run TestTrajectoryMatchesPreSoASeed .
const presoaGoldenPath = "testdata/presoa_trajectories.json"

type presoaCase struct {
	Name       string   `json:"name"`
	StepHashes []string `json:"step_hashes"`
}

type presoaGolden struct {
	// Arch records the architecture the hashes were produced on. The
	// comparison is skipped elsewhere: FMA contraction on arm64/ppc64
	// would legitimately change low-order bits.
	Arch  string       `json:"arch"`
	Cases []presoaCase `json:"cases"`
}

// presoaConfigs returns the named scenarios pinned by the golden file:
// a pure host-engine run (the SoA P2P + batched-MAC walk), a guarded
// run whose only board dies on the first call (every batch goes through
// the guard's reference check and the host fallback), and a two-board
// run that loses one board mid-run (probe verification, bisection and
// partial hardware service stay live).
func presoaConfigs() []struct {
	name  string
	n     int
	seed  uint64
	steps int
	cfg   Config
} {
	deadCfg := g5.DefaultConfig()
	deadCfg.Boards = 1
	deadCfg.Fault = &g5.FaultModel{Seed: 9, FailBoard: 1, FailAfterRuns: 0, FailSlot: 3}
	lossCfg := g5.DefaultConfig()
	lossCfg.Fault = &g5.FaultModel{Seed: 3, FailBoard: 2, FailAfterRuns: 40, FailSlot: 7}
	return []struct {
		name  string
		n     int
		seed  uint64
		steps int
		cfg   Config
	}{
		{
			name: "host-engine", n: 600, seed: 11, steps: 8,
			cfg: Config{
				Theta: 0.7, Ncrit: 96, G: 1, Eps: 0.02, DT: 0.002,
				Engine: EngineHost, Workers: 4,
			},
		},
		{
			name: "guarded-all-boards-lost", n: 400, seed: 6, steps: 8,
			cfg: Config{
				Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
				Engine: EngineGRAPE5, GRAPE: deadCfg, Guard: true,
				GuardPolicy: g5.GuardPolicy{MaxRetries: 1, FallbackAfter: 1},
			},
		},
		{
			name: "guarded-board-loss", n: 800, seed: 5, steps: 12,
			cfg: Config{
				Theta: 0.6, Ncrit: 64, G: 1, Eps: 0.05, DT: 0.005,
				Engine: EngineGRAPE5, GRAPE: lossCfg, Guard: true,
			},
		},
	}
}

// presoaRun executes one scenario and returns the per-step state hash
// (positions then velocities, little-endian float64 bits, in particle
// order — the integrator never reorders particles).
func presoaRun(t *testing.T, n int, seed uint64, steps int, cfg Config) []string {
	t.Helper()
	sim, err := NewSimulation(Plummer(n, 1, 1, 1, seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Prime(); err != nil {
		t.Fatal(err)
	}
	hashes := make([]string, 0, steps)
	buf := make([]byte, 8)
	for k := 0; k < steps; k++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		// Hash the IEEE-754 bit patterns, not numeric values: the
		// comparison must distinguish -0 from +0.
		put := func(v float64) {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			h.Write(buf)
		}
		for i := range sim.Sys.Pos {
			p, v := sim.Sys.Pos[i], sim.Sys.Vel[i]
			put(p.X)
			put(p.Y)
			put(p.Z)
			put(v.X)
			put(v.Y)
			put(v.Z)
		}
		hashes = append(hashes, hex.EncodeToString(h.Sum(nil)))
	}
	return hashes
}

// TestTrajectoryMatchesPreSoASeed replays the pinned scenarios and
// asserts every per-step state hash matches the pre-SoA recording.
func TestTrajectoryMatchesPreSoASeed(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden hashes recorded on amd64; %s may contract FMAs differently", runtime.GOARCH)
	}
	if os.Getenv("REGEN_PRESOA") != "" {
		regenPreSoA(t)
		return
	}
	data, err := os.ReadFile(presoaGoldenPath)
	if err != nil {
		t.Fatalf("reading golden file (REGEN_PRESOA=1 to create): %v", err)
	}
	var golden presoaGolden
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	for _, c := range golden.Cases {
		want[c.Name] = c.StepHashes
	}
	for _, sc := range presoaConfigs() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			wantHashes, ok := want[sc.name]
			if !ok {
				t.Fatalf("scenario %q missing from %s (REGEN_PRESOA=1 to refresh)", sc.name, presoaGoldenPath)
			}
			got := presoaRun(t, sc.n, sc.seed, sc.steps, sc.cfg)
			if len(got) != len(wantHashes) {
				t.Fatalf("ran %d steps, golden has %d", len(got), len(wantHashes))
			}
			for k := range got {
				if got[k] != wantHashes[k] {
					t.Fatalf("step %d: trajectory hash %s != pre-SoA golden %s (force arithmetic or j-list order changed)",
						k, got[k][:16], wantHashes[k][:16])
				}
			}
		})
	}
}

// regenPreSoA rewrites the golden file from the current build.
func regenPreSoA(t *testing.T) {
	golden := presoaGolden{Arch: runtime.GOARCH}
	for _, sc := range presoaConfigs() {
		hashes := presoaRun(t, sc.n, sc.seed, sc.steps, sc.cfg)
		golden.Cases = append(golden.Cases, presoaCase{Name: sc.name, StepHashes: hashes})
		t.Logf("recorded %s: %d steps, final %s…", sc.name, len(hashes), hashes[len(hashes)-1][:16])
	}
	if err := os.MkdirAll(filepath.Dir(presoaGoldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(presoaGoldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", presoaGoldenPath)
}
